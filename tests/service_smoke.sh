#!/usr/bin/env bash
# End-to-end smoke of the simulation service (docs/SERVICE.md):
#
#  1. start grit_serve, submit the same cell from two concurrent
#     clients — the cell must execute exactly once (in-flight dedupe
#     or store hit), and both clients' grit-results documents must be
#     byte-identical;
#  2. kill -9 the daemon (no drain), restart it on the same store —
#     the cell must come back as a cache hit, byte-identical again,
#     with zero re-executions;
#  3. SIGTERM the restarted daemon — it must drain, write the
#     service-counters document, and exit 0;
#  4. every emitted JSON document must validate against the
#     grit-results schema checker.
#
# Usage: service_smoke.sh GRIT_SERVE GRIT_SUBMIT WORKDIR CHECKER

set -u

SERVE=$1
SUBMIT=$2
WORKDIR=$3
CHECKER=$4

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
# Unix socket paths are limited to ~107 bytes; build trees can exceed
# that, so the socket lives under TMPDIR.
SOCK_DIR=$(mktemp -d "${TMPDIR:-/tmp}/grit_svc.XXXXXX")
SOCK="$SOCK_DIR/svc.sock"
STORE="$WORKDIR/store.jsonl"

# The golden-pinned workload scale: small and fast.
export GRIT_FOOTPRINT_DIVISOR=128
export GRIT_INTENSITY=0.2

SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null
    rm -rf "$SOCK_DIR"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    for log in "$WORKDIR"/serve*.log; do
        [ -f "$log" ] && { echo "--- $log ---" >&2; cat "$log" >&2; }
    done
    exit 1
}

wait_ready() {
    for _ in $(seq 1 100); do
        "$SUBMIT" --socket "$SOCK" --ping >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    fail "daemon on $SOCK never became reachable"
}

counter() {  # counter FILE NAME -> value
    awk -v key="service.$2" '$1 == key { print $2 }' "$1"
}

# ---- 1. cold daemon, two concurrent identical submissions ------------

"$SERVE" --socket "$SOCK" --store "$STORE" --workers 2 \
    --json "$WORKDIR/serve1.json" 2>"$WORKDIR/serve1.log" &
SERVE_PID=$!
wait_ready

"$SUBMIT" --socket "$SOCK" --client alice BFS on-touch \
    --json "$WORKDIR/run_a.json" >"$WORKDIR/a.out" 2>/dev/null &
A=$!
"$SUBMIT" --socket "$SOCK" --client bob BFS on-touch \
    --json "$WORKDIR/run_b.json" >"$WORKDIR/b.out" 2>/dev/null &
B=$!
wait "$A" || fail "client alice exited non-zero"
wait "$B" || fail "client bob exited non-zero"

cmp -s "$WORKDIR/run_a.json" "$WORKDIR/run_b.json" ||
    fail "concurrent identical submissions produced different documents"

"$SUBMIT" --socket "$SOCK" --stats >"$WORKDIR/stats1.out" ||
    fail "stats request refused"
[ "$(counter "$WORKDIR/stats1.out" requests)" = 2 ] ||
    fail "expected 2 run requests, got: $(cat "$WORKDIR/stats1.out")"
[ "$(counter "$WORKDIR/stats1.out" executed)" = 1 ] ||
    fail "identical cells executed more than once: $(cat "$WORKDIR/stats1.out")"
[ "$(counter "$WORKDIR/stats1.out" store_entries)" = 1 ] ||
    fail "expected 1 stored result: $(cat "$WORKDIR/stats1.out")"
SHARED=$(( $(counter "$WORKDIR/stats1.out" hits) \
         + $(counter "$WORKDIR/stats1.out" deduped) ))
[ "$SHARED" = 1 ] ||
    fail "second request neither deduped nor store-served: $(cat "$WORKDIR/stats1.out")"

# ---- 2. kill -9, restart, warm cache ---------------------------------

kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null
SERVE_PID=""

"$SERVE" --socket "$SOCK" --store "$STORE" --workers 2 \
    --json "$WORKDIR/serve2.json" 2>"$WORKDIR/serve2.log" &
SERVE_PID=$!
wait_ready

"$SUBMIT" --socket "$SOCK" --ping >"$WORKDIR/ping2.out" ||
    fail "ping refused"
grep -q '^version grit_serve/' "$WORKDIR/ping2.out" ||
    fail "ping carries no server version: $(cat "$WORKDIR/ping2.out")"
grep -q '^draining 0$' "$WORKDIR/ping2.out" ||
    fail "live daemon claims to be draining: $(cat "$WORKDIR/ping2.out")"

"$SUBMIT" --socket "$SOCK" --client carol BFS on-touch \
    --json "$WORKDIR/run_c.json" >"$WORKDIR/c.out" ||
    fail "post-restart submission failed"
grep -q '^cached 1$' "$WORKDIR/c.out" ||
    fail "restarted daemon did not serve the stored result: $(cat "$WORKDIR/c.out")"
grep -q '^persisted 1$' "$WORKDIR/c.out" ||
    fail "store hit not reported as persisted: $(cat "$WORKDIR/c.out")"
cmp -s "$WORKDIR/run_a.json" "$WORKDIR/run_c.json" ||
    fail "cache hit after kill -9 is not byte-identical"

"$SUBMIT" --socket "$SOCK" --stats >"$WORKDIR/stats2.out" ||
    fail "post-restart stats request refused"
[ "$(counter "$WORKDIR/stats2.out" executed)" = 0 ] ||
    fail "restarted daemon re-executed a stored cell: $(cat "$WORKDIR/stats2.out")"
[ "$(counter "$WORKDIR/stats2.out" hits)" = 1 ] ||
    fail "expected 1 store hit after restart: $(cat "$WORKDIR/stats2.out")"
[ "$(counter "$WORKDIR/stats2.out" store_scanned)" = 1 ] ||
    fail "startup scrub scanned wrong record count: $(cat "$WORKDIR/stats2.out")"
[ "$(counter "$WORKDIR/stats2.out" store_valid)" = 1 ] ||
    fail "startup scrub validated wrong record count: $(cat "$WORKDIR/stats2.out")"
[ "$(counter "$WORKDIR/stats2.out" store_quarantined)" = 0 ] ||
    fail "clean store reported quarantined records: $(cat "$WORKDIR/stats2.out")"

# ---- 3. graceful drain -----------------------------------------------

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
DRAIN_EXIT=$?
SERVE_PID=""
[ "$DRAIN_EXIT" = 0 ] || fail "SIGTERM drain exited $DRAIN_EXIT, want 0"
[ -s "$WORKDIR/serve2.json" ] ||
    fail "drained daemon wrote no service-counters document"

# ---- 4. schema validation --------------------------------------------

python3 "$CHECKER" "$WORKDIR/run_a.json" "$WORKDIR/run_c.json" \
    "$WORKDIR/serve2.json" || fail "schema validation failed"

echo "service_smoke: OK"
exit 0
