/** @file Unit tests for the comparison baselines: Griffin-DPC, GPS,
 *  Trans-FW helpers, and the tree-based neighborhood prefetcher. */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/gps.h"
#include "baselines/griffin.h"
#include "baselines/transfw.h"
#include "baselines/tree_prefetcher.h"
#include "policy/on_touch.h"
#include "test_util.h"

namespace grit::baselines {
namespace {

using test::MiniSystem;

// ------------------------------------------------------------------- Griffin

TEST(GriffinDpc, ColdMigratesThenMapsRemote)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<GriffinDpcPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);
    EXPECT_EQ(sys.driver->directory().ownerOf(10), 0);
    sys.driver->handleFault(1, 10, false, false, 1000);
    EXPECT_EQ(sys.gpu(1).pageTable().find(10)->kind,
              mem::MappingKind::kRemote);
}

TEST(GriffinDpc, IntervalMigratesToDominantAccessor)
{
    GriffinConfig config;
    config.intervalCycles = 1000;
    config.minAccesses = 4;
    config.dominanceRatio = 2.0;
    MiniSystem sys(2);
    auto policy = std::make_unique<GriffinDpcPolicy>(config);
    GriffinDpcPolicy *dpc = policy.get();
    sys.usePolicy(std::move(policy));

    sys.driver->handleFault(0, 10, false, false, 0);  // GPU 0 owns
    // GPU 1 hammers the page remotely within the interval.
    for (int i = 0; i < 10; ++i)
        dpc->onAccess(1, 10, false, true, 100 + i);
    // Crossing the boundary triggers classification.
    dpc->onAccess(1, 10, false, true, 1500);
    EXPECT_EQ(sys.driver->directory().ownerOf(10), 1);
    EXPECT_GE(dpc->migrationsIssued(), 1u);
    EXPECT_GE(dpc->intervalsProcessed(), 1u);
}

TEST(GriffinDpc, QuietPagesStayPut)
{
    GriffinConfig config;
    config.intervalCycles = 1000;
    config.minAccesses = 16;
    MiniSystem sys(2);
    auto policy = std::make_unique<GriffinDpcPolicy>(config);
    GriffinDpcPolicy *dpc = policy.get();
    sys.usePolicy(std::move(policy));

    sys.driver->handleFault(0, 10, false, false, 0);
    dpc->onAccess(1, 10, false, true, 100);  // below minAccesses
    dpc->onAccess(1, 10, false, true, 1500);
    EXPECT_EQ(sys.driver->directory().ownerOf(10), 0);
    EXPECT_EQ(dpc->migrationsIssued(), 0u);
}

TEST(GriffinDpc, ResetClearsIntervalState)
{
    MiniSystem sys(2);
    auto policy = std::make_unique<GriffinDpcPolicy>();
    GriffinDpcPolicy *dpc = policy.get();
    sys.usePolicy(std::move(policy));
    dpc->onAccess(0, 1, false, false, 10);
    dpc->reset();
    EXPECT_EQ(dpc->intervalsProcessed(), 0u);
}

// ----------------------------------------------------------------------- GPS

TEST(Gps, SubscribesWithWritableReplica)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<GpsPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);
    sys.driver->handleFault(1, 10, false, false, 100000);
    const mem::PteRecord *rec = sys.gpu(1).pageTable().find(10);
    ASSERT_NE(rec, nullptr);
    EXPECT_TRUE(rec->pte.writable());       // GPS replicas are writable
    EXPECT_FALSE(rec->readOnlyReplica);
    // The owner keeps write permission too: no collapses under GPS.
    EXPECT_TRUE(sys.gpu(0).pageTable().find(10)->pte.writable());
    EXPECT_TRUE(sys.driver->directory().find(10)->hasReplica(1));
}

TEST(Gps, StoresBroadcastToSubscribers)
{
    MiniSystem sys(3);
    auto policy = std::make_unique<GpsPolicy>();
    GpsPolicy *gps = policy.get();
    sys.usePolicy(std::move(policy));
    sys.driver->handleFault(0, 10, false, false, 0);
    sys.driver->handleFault(1, 10, false, false, 100000);
    sys.driver->handleFault(2, 10, false, false, 200000);

    const sim::Cycle overhead = gps->onAccess(1, 10, true, false, 300000);
    EXPECT_GT(overhead, 0u);
    // Pushes to the owner (GPU 0) and the other subscriber (GPU 2).
    EXPECT_EQ(gps->broadcasts(), 2u);
}

TEST(Gps, ReadsAndUnsharedWritesAreFree)
{
    MiniSystem sys(2);
    auto policy = std::make_unique<GpsPolicy>();
    GpsPolicy *gps = policy.get();
    sys.usePolicy(std::move(policy));
    sys.driver->handleFault(0, 10, false, false, 0);
    EXPECT_EQ(gps->onAccess(0, 10, false, false, 100), 0u);  // read
    EXPECT_EQ(gps->onAccess(0, 10, true, false, 200), 0u);   // no replicas
    EXPECT_EQ(gps->broadcasts(), 0u);
}

// ------------------------------------------------------------------- TransFW

TEST(TransFw, ConfigHelpers)
{
    uvm::UvmConfig config;
    EXPECT_FALSE(config.transFw);
    EXPECT_FALSE(config.acud);
    applyTransFw(config);
    applyAcud(config);
    EXPECT_TRUE(config.transFw);
    EXPECT_TRUE(config.acud);
}

TEST(TransFw, ForwardCounterReadsDriverStats)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    EXPECT_EQ(transFwForwards(*sys.driver), 0u);
    sys.stats.counter("uvm.transfw_forwards").inc(3);
    EXPECT_EQ(transFwForwards(*sys.driver), 3u);
}

// ----------------------------------------------------------- TreePrefetcher

TEST(TreePrefetcher, MajorityOccupancyPrefetchesSiblings)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    PrefetcherConfig config;
    config.pagesPerBlock = 2;
    config.blocksPerRoot = 4;  // root covers 8 pages
    TreePrefetcher prefetcher(*sys.driver, config);

    // Touch three of the four pages under the 2-leaf node (blocks 0-1):
    // occupancy strictly exceeds 50 % -> the remaining page prefetches.
    sys.driver->handleFault(0, 0, false, false, 0);
    sys.driver->handleFault(0, 1, false, false, 100000);
    sys.driver->handleFault(0, 2, false, false, 200000);
    EXPECT_GE(prefetcher.triggers(), 1u);
    EXPECT_GE(prefetcher.prefetchedPages(), 1u);
    EXPECT_EQ(sys.driver->directory().ownerOf(3), 0);
    EXPECT_GT(sys.stats.get("uvm.prefetches"), 0u);
}

TEST(TreePrefetcher, DoesNotStealResidentPages)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    PrefetcherConfig config;
    config.pagesPerBlock = 2;
    config.blocksPerRoot = 4;
    TreePrefetcher prefetcher(*sys.driver, config);

    // GPU 1 owns page 2 before GPU 0's occupancy grows.
    sys.driver->handleFault(1, 2, false, false, 0);
    sys.driver->handleFault(0, 0, false, false, 100000);
    sys.driver->handleFault(0, 1, false, false, 200000);
    EXPECT_EQ(sys.driver->directory().ownerOf(2), 1);  // untouched
}

TEST(TreePrefetcher, PerGpuTreesAreIndependent)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    PrefetcherConfig config;
    config.pagesPerBlock = 2;
    config.blocksPerRoot = 4;
    TreePrefetcher prefetcher(*sys.driver, config);

    // Each GPU holds one page of the node: neither reaches majority
    // within its own tree.
    sys.driver->handleFault(0, 0, false, false, 0);
    sys.driver->handleFault(1, 2, false, false, 100000);
    EXPECT_EQ(prefetcher.triggers(), 0u);
}

}  // namespace
}  // namespace grit::baselines
