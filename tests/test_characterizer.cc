/** @file Unit tests for the offline trace characterizer on hand-built
 *  workloads with known properties. */

#include <gtest/gtest.h>

#include "workload/characterizer.h"
#include "workload/trace.h"

namespace grit::workload {
namespace {

/** Hand-built workload: two GPUs, four pages with known classes. */
Workload
tinyWorkload()
{
    Workload w;
    w.name = "tiny";
    w.footprintGenPages = 4;
    w.traces.resize(2);
    auto touch = [&](unsigned gpu, sim::PageId page, bool write) {
        w.traces[gpu].push_back(Access{pageLineAddr(page, 0, kGenPageBytes), write});
    };
    // Page 0: private read (GPU 0 only, reads).
    touch(0, 0, false);
    touch(0, 0, false);
    // Page 1: private read-write (GPU 1 only).
    touch(1, 1, false);
    touch(1, 1, true);
    // Page 2: shared read (both GPUs).
    touch(0, 2, false);
    touch(1, 2, false);
    // Page 3: shared read-write.
    touch(0, 3, true);
    touch(1, 3, false);
    return w;
}

TEST(Characterizer, ClassifiesPagesAndAccesses)
{
    const auto c = classifyPages(tinyWorkload());
    EXPECT_EQ(c.privatePages, 2u);
    EXPECT_EQ(c.sharedPages, 2u);
    EXPECT_EQ(c.readPages, 2u);
    EXPECT_EQ(c.readWritePages, 2u);
    EXPECT_EQ(c.accessesToPrivate, 4u);
    EXPECT_EQ(c.accessesToShared, 4u);
    EXPECT_EQ(c.accessesToRead, 4u);
    EXPECT_EQ(c.accessesToReadWrite, 4u);
    EXPECT_EQ(c.totalPages(), 4u);
    EXPECT_EQ(c.totalAccesses(), 8u);
}

TEST(Characterizer, AttributesOverTime)
{
    const auto map = attributesOverTime(tinyWorkload(), 1);
    ASSERT_EQ(map.size(), 1u);
    ASSERT_EQ(map[0].size(), 4u);
    EXPECT_EQ(map[0][0], PageAttr::kPrivateRead);
    EXPECT_EQ(map[0][1], PageAttr::kPrivateReadWrite);
    EXPECT_EQ(map[0][2], PageAttr::kSharedRead);
    EXPECT_EQ(map[0][3], PageAttr::kSharedReadWrite);
}

TEST(Characterizer, AttributesChangePerInterval)
{
    Workload w;
    w.footprintGenPages = 1;
    w.traces.resize(2);
    // First half: GPU 0 reads page 0; second half: GPU 1 writes it.
    w.traces[0].push_back(Access{0, false});
    w.traces[0].push_back(Access{0, false});
    w.traces[1].push_back(Access{0, true});
    w.traces[1].push_back(Access{0, true});
    // With 2 intervals, each GPU's trace splits in half; both GPUs are
    // active in both intervals -> shared either way, write bit varies
    // per interval via the per-interval facts.
    const auto map = attributesOverTime(w, 2);
    EXPECT_EQ(map[0][0], PageAttr::kSharedReadWrite);
}

TEST(Characterizer, UntouchedPagesStayUntouched)
{
    Workload w;
    w.footprintGenPages = 3;
    w.traces.resize(1);
    w.traces[0].push_back(Access{0, false});  // only page 0 touched
    const auto map = attributesOverTime(w, 2);
    EXPECT_EQ(map[0][1], PageAttr::kUntouched);
    EXPECT_EQ(map[1][2], PageAttr::kUntouched);
}

TEST(Characterizer, NeighborSimilarityBounds)
{
    // Identical neighbors -> similarity 1.
    std::vector<std::vector<PageAttr>> uniform(
        2, std::vector<PageAttr>(8, PageAttr::kSharedRead));
    EXPECT_DOUBLE_EQ(neighborSimilarity(uniform), 1.0);

    // Alternating attributes -> similarity 0.
    std::vector<std::vector<PageAttr>> alternating(
        1, std::vector<PageAttr>(8));
    for (std::size_t p = 0; p < 8; ++p)
        alternating[0][p] = p % 2 == 0 ? PageAttr::kPrivateRead
                                       : PageAttr::kSharedRead;
    EXPECT_DOUBLE_EQ(neighborSimilarity(alternating), 0.0);

    // Untouched pages are excluded from the metric.
    std::vector<std::vector<PageAttr>> sparse(
        1, std::vector<PageAttr>(4, PageAttr::kUntouched));
    EXPECT_DOUBLE_EQ(neighborSimilarity(sparse), 0.0);
}

TEST(Characterizer, PageGpuDistribution)
{
    const auto dist = pageGpuDistribution(tinyWorkload(), 2, 1);
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_EQ(dist[0][0], 1u);
    EXPECT_EQ(dist[0][1], 1u);
}

TEST(Characterizer, PageRwDistribution)
{
    const auto dist = pageRwDistribution(tinyWorkload(), 3, 1);
    EXPECT_EQ(dist[0].first, 1u);   // one read
    EXPECT_EQ(dist[0].second, 1u);  // one write
}

TEST(Characterizer, SharedPagePickers)
{
    const Workload w = tinyWorkload();
    const sim::PageId shared = mostAccessedSharedPage(w);
    EXPECT_TRUE(shared == 2 || shared == 3);
    EXPECT_EQ(mostAccessedSharedRwPage(w), 3u);
}

TEST(Characterizer, PageAttrNames)
{
    EXPECT_STREQ(pageAttrName(PageAttr::kUntouched), "untouched");
    EXPECT_STREQ(pageAttrName(PageAttr::kSharedReadWrite), "shared-rw");
}

}  // namespace
}  // namespace grit::workload
