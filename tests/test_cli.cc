/** @file Tests for harness::Cli, the declarative flag registry behind
 *  every bench binary: typed parsing, both --flag V and --flag=V
 *  spellings, aliases, positionals, generated help, and the structured
 *  kBadArgument errors guardedMain maps to exit code 2. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "simcore/sim_error.h"

namespace grit::harness {
namespace {

/** Run parse() over a brace-list argv (argv[0] is added). */
bool
parse(Cli &cli, std::vector<std::string> args)
{
    std::vector<char *> argv = {const_cast<char *>("prog")};
    for (std::string &a : args)
        argv.push_back(a.data());
    return cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, TypedFlagsParseBothSpellings)
{
    Cli cli("prog", "title");
    unsigned jobs = 0;
    double deadline = 0.0;
    std::uint64_t budget = 0;
    std::string path;
    bool audit = false;
    cli.flag("--jobs", &jobs, "N", "workers", "-j");
    cli.flag("--deadline", &deadline, "SEC", "wall budget");
    cli.flag("--event-budget", &budget, "N", "event budget");
    cli.flag("--json", &path, "PATH", "output");
    cli.flag("--audit", &audit, "audits on");

    EXPECT_TRUE(parse(cli, {"--jobs", "4", "--deadline=2.5",
                            "--event-budget", "123456789012345",
                            "--json=-", "--audit"}));
    EXPECT_EQ(jobs, 4u);
    EXPECT_DOUBLE_EQ(deadline, 2.5);
    EXPECT_EQ(budget, 123456789012345ull);
    EXPECT_EQ(path, "-");
    EXPECT_TRUE(audit);
}

TEST(Cli, AliasResolvesToTheSameFlag)
{
    Cli cli("prog", "title");
    unsigned jobs = 0;
    cli.flag("--jobs", &jobs, "N", "workers", "-j");
    EXPECT_TRUE(parse(cli, {"-j", "8"}));
    EXPECT_EQ(jobs, 8u);
}

TEST(Cli, DefaultsSurviveWhenFlagsAbsent)
{
    Cli cli("prog", "title");
    unsigned jobs = 3;
    std::string path = "keep.json";
    cli.flag("--jobs", &jobs, "N", "workers");
    cli.flag("--json", &path, "PATH", "output");
    EXPECT_TRUE(parse(cli, {}));
    EXPECT_EQ(jobs, 3u);
    EXPECT_EQ(path, "keep.json");
}

TEST(Cli, PositionalsFillInOrderAndMayBeOptional)
{
    Cli cli("prog", "title");
    std::string app = "BFS";
    std::string policy = "on-touch";
    bool audit = false;
    cli.flag("--audit", &audit, "audits on");
    cli.positional("APP", &app, "application", /*required=*/false);
    cli.positional("POLICY", &policy, "policy", /*required=*/false);

    EXPECT_TRUE(parse(cli, {"GEMM", "--audit", "grit"}));
    EXPECT_EQ(app, "GEMM");  // interleaved with flags
    EXPECT_EQ(policy, "grit");
    EXPECT_TRUE(audit);

    app = "BFS";
    policy = "on-touch";
    EXPECT_TRUE(parse(cli, {}));
    EXPECT_EQ(app, "BFS");  // optional: defaults survive
    EXPECT_EQ(policy, "on-touch");
}

TEST(Cli, MissingRequiredPositionalThrows)
{
    Cli cli("prog", "title");
    std::string input;
    cli.positional("INPUT", &input, "input file");
    try {
        parse(cli, {});
        FAIL() << "expected SimException";
    } catch (const sim::SimException &e) {
        EXPECT_EQ(e.code(), sim::ErrorCode::kBadArgument);
        EXPECT_NE(e.error().str().find("INPUT"), std::string::npos);
    }
}

TEST(Cli, UnknownFlagAndExtraPositionalThrow)
{
    Cli cli("prog", "title");
    EXPECT_THROW(parse(cli, {"--bogus"}), sim::SimException);
    EXPECT_THROW(parse(cli, {"stray"}), sim::SimException);
}

TEST(Cli, MalformedAndMissingValuesThrow)
{
    Cli cli("prog", "title");
    unsigned jobs = 0;
    double deadline = 0.0;
    bool audit = false;
    cli.flag("--jobs", &jobs, "N", "workers");
    cli.flag("--deadline", &deadline, "SEC", "wall budget");
    cli.flag("--audit", &audit, "audits on");

    EXPECT_THROW(parse(cli, {"--jobs", "four"}), sim::SimException);
    EXPECT_THROW(parse(cli, {"--jobs=4x"}), sim::SimException);
    EXPECT_THROW(parse(cli, {"--deadline", "fast"}), sim::SimException);
    EXPECT_THROW(parse(cli, {"--jobs"}), sim::SimException);  // no value
    EXPECT_THROW(parse(cli, {"--audit=yes"}),
                 sim::SimException);  // bool takes no value
}

TEST(Cli, HelpReturnsFalseAndListsEveryRegistration)
{
    Cli cli("prog", "does things");
    unsigned jobs = 0;
    std::string app;
    cli.flag("--jobs", &jobs, "N", "parallel workers", "-j");
    cli.positional("APP", &app, "application name", /*required=*/false);

    EXPECT_FALSE(parse(cli, {"--help"}));
    EXPECT_FALSE(parse(cli, {"-h"}));

    std::ostringstream os;
    cli.printHelp(os);
    const std::string help = os.str();
    for (const char *needle :
         {"prog - does things", "[APP]", "application name", "-j, --jobs N",
          "parallel workers", "-h, --help"})
        EXPECT_NE(help.find(needle), std::string::npos) << needle;
}

TEST(Cli, ErrorsNameTheProgramAndSuggestHelp)
{
    Cli cli("fig17_overall", "title");
    try {
        parse(cli, {"--bogus"});
        FAIL() << "expected SimException";
    } catch (const sim::SimException &e) {
        const std::string msg = e.error().str();
        EXPECT_NE(msg.find("fig17_overall"), std::string::npos);
        EXPECT_NE(msg.find("--bogus"), std::string::npos);
        EXPECT_NE(msg.find("--help"), std::string::npos);
    }
}

}  // namespace
}  // namespace grit::harness
