/** @file Cross-module consistency properties: after arbitrary sequences
 *  of faults, migrations, duplications, collapses, evictions, and
 *  prefetches, the directory, the per-GPU page tables, and the DRAM
 *  frame states must agree. Randomized stress against every policy —
 *  the class of test that catches stale-directory bugs. */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/gps.h"
#include "baselines/griffin.h"
#include "baselines/tree_prefetcher.h"
#include "core/grit_policy.h"
#include "harness/experiment.h"
#include "policy/access_counter_policy.h"
#include "policy/duplication.h"
#include "policy/first_touch.h"
#include "policy/on_touch.h"
#include "simcore/rng.h"
#include "test_util.h"

namespace grit {
namespace {

using test::MiniSystem;

/**
 * Validate every invariant tying the driver's directory to the GPUs'
 * page tables and DRAM frames. Returns a description of the first
 * violation, or an empty string.
 */
std::string
validate(MiniSystem &sys, sim::PageId max_page)
{
    const auto &dir = sys.driver->directory();
    for (sim::PageId page = 0; page <= max_page; ++page) {
        const uvm::PageInfo *info = dir.find(page);
        if (info == nullptr)
            continue;
        const std::string tag = "page " + std::to_string(page) + ": ";

        // 1) A GPU owner must back the page with an owned frame.
        if (info->owner >= 0) {
            auto &dram = sys.gpu(static_cast<unsigned>(info->owner)).dram();
            if (!dram.resident(page))
                return tag + "owner frame missing";
            if (dram.kindOf(page) != mem::FrameKind::kOwned)
                return tag + "owner frame not owned";
        }

        // 2) The owner never appears in its own replica list.
        if (info->owner >= 0 && info->hasReplica(info->owner))
            return tag + "owner listed as replica";

        // 3) Every replica holder backs the page with a replica frame.
        for (sim::GpuId holder : info->replicas) {
            auto &dram = sys.gpu(static_cast<unsigned>(holder)).dram();
            if (!dram.resident(page))
                return tag + "replica frame missing at GPU " +
                       std::to_string(holder);
            if (dram.kindOf(page) != mem::FrameKind::kReplica)
                return tag + "replica frame has wrong kind";
        }

        // 4) Valid local mappings must match a real local frame; valid
        //    remote mappings must point at the directory owner.
        for (unsigned g = 0; g < sys.driver->numGpus(); ++g) {
            const mem::PteRecord *rec =
                sys.gpu(g).pageTable().find(page);
            if (rec == nullptr || !rec->pte.valid())
                continue;
            if (rec->kind == mem::MappingKind::kLocal) {
                if (!sys.gpu(g).dram().resident(page))
                    return tag + "valid local PTE without frame at GPU " +
                           std::to_string(g);
            } else {
                if (rec->location != info->owner)
                    return tag + "remote PTE points at " +
                           std::to_string(rec->location) + " but owner is " +
                           std::to_string(info->owner);
            }
        }

        // 5) Replicas imply a write-protected page: any valid local
        //    mapping of a replicated page must be read-only.
        if (!info->replicas.empty() && info->owner >= 0) {
            const mem::PteRecord *rec =
                sys.gpu(static_cast<unsigned>(info->owner))
                    .pageTable()
                    .find(page);
            // GPS (writable replicas) opts out via readOnlyReplica on
            // neither side; only enforce when a replica PTE is RO.
            const sim::GpuId holder = info->replicas.front();
            const mem::PteRecord *replica_rec =
                sys.gpu(static_cast<unsigned>(holder))
                    .pageTable()
                    .find(page);
            if (replica_rec != nullptr && replica_rec->pte.valid() &&
                replica_rec->readOnlyReplica && rec != nullptr &&
                rec->pte.valid() && rec->pte.writable()) {
                return tag + "writable owner with read-only replicas";
            }
        }
    }
    return "";
}

/** Random fault/access storm against one policy, validating as it goes. */
void
stress(std::unique_ptr<policy::PlacementPolicy> policy,
       bool with_prefetcher, std::uint64_t seed)
{
    constexpr unsigned kGpus = 4;
    constexpr sim::PageId kPages = 64;
    constexpr std::uint64_t kCapacity = 12;  // heavy oversubscription

    MiniSystem sys(kGpus, kCapacity);
    policy::PlacementPolicy *p = policy.get();
    sys.usePolicy(std::move(policy));
    std::unique_ptr<baselines::TreePrefetcher> prefetcher;
    if (with_prefetcher) {
        baselines::PrefetcherConfig config;
        config.pagesPerBlock = 4;
        config.blocksPerRoot = 8;
        prefetcher =
            std::make_unique<baselines::TreePrefetcher>(*sys.driver,
                                                        config);
    }

    sim::Rng rng(seed);
    sim::Cycle now = 0;
    for (unsigned op = 0; op < 3000; ++op) {
        const auto gpu = static_cast<sim::GpuId>(rng.below(kGpus));
        const sim::PageId page = rng.below(kPages);
        const bool write = rng.chance(0.3);
        now += 50 + rng.below(500);

        // Mimic the simulator: fault when the local translation is
        // unusable, count remote accesses, occasionally drive the
        // policy's access hook.
        const mem::PteRecord *rec =
            sys.gpu(static_cast<unsigned>(gpu)).pageTable().find(page);
        const bool usable = rec != nullptr && rec->pte.valid() &&
                            (!write || !rec->readOnlyReplica);
        if (!usable) {
            const bool protection = rec != nullptr && rec->pte.valid() &&
                                    write && rec->readOnlyReplica;
            sys.driver->handleFault(gpu, page, write, protection, now);
        } else if (rec->kind == mem::MappingKind::kRemote &&
                   p->countsRemote(page) &&
                   sys.gpu(static_cast<unsigned>(gpu))
                       .counters()
                       .recordRemoteAccess(page)) {
            sys.driver->counterMigration(gpu, page, now);
        }
        p->onAccess(gpu, page, write,
                    rec != nullptr &&
                        rec->kind == mem::MappingKind::kRemote,
                    now);

        if (op % 100 == 0) {
            const std::string violation = validate(sys, kPages);
            ASSERT_EQ(violation, "") << "after op " << op;
        }
    }
    const std::string violation = validate(sys, kPages);
    EXPECT_EQ(violation, "");
}

TEST(Consistency, OnTouchStorm)
{
    stress(std::make_unique<policy::OnTouchPolicy>(), false, 1);
}

TEST(Consistency, AccessCounterStorm)
{
    stress(std::make_unique<policy::AccessCounterPolicy>(), false, 2);
}

TEST(Consistency, DuplicationStorm)
{
    stress(std::make_unique<policy::DuplicationPolicy>(), false, 3);
}

TEST(Consistency, FirstTouchStorm)
{
    stress(std::make_unique<policy::FirstTouchPolicy>(), false, 4);
}

TEST(Consistency, GritStorm)
{
    stress(std::make_unique<core::GritPolicy>(), false, 5);
}

TEST(Consistency, GritLowThresholdStorm)
{
    core::GritConfig config;
    config.faultThreshold = 2;
    stress(std::make_unique<core::GritPolicy>(config), false, 6);
}

TEST(Consistency, GriffinStorm)
{
    baselines::GriffinConfig config;
    config.intervalCycles = 5000;
    config.minAccesses = 4;
    stress(std::make_unique<baselines::GriffinDpcPolicy>(config), false,
           7);
}

TEST(Consistency, GpsStorm)
{
    stress(std::make_unique<baselines::GpsPolicy>(), false, 8);
}

TEST(Consistency, OnTouchWithPrefetcherStorm)
{
    // The configuration that exposed the stale-replica-promotion bug.
    stress(std::make_unique<policy::OnTouchPolicy>(), true, 9);
}

TEST(Consistency, GritWithPrefetcherStorm)
{
    stress(std::make_unique<core::GritPolicy>(), true, 10);
}

TEST(Consistency, DuplicationWithPrefetcherStorm)
{
    stress(std::make_unique<policy::DuplicationPolicy>(), true, 11);
}

/** Seed sweep of the nastiest configuration. */
class GritPrefetchSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GritPrefetchSeeds, StaysConsistent)
{
    core::GritConfig config;
    config.faultThreshold = 2;  // maximal scheme churn
    stress(std::make_unique<core::GritPolicy>(config), true, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GritPrefetchSeeds,
                         ::testing::Values(100u, 101u, 102u, 103u, 104u,
                                           105u, 106u, 107u));

}  // namespace
}  // namespace grit
