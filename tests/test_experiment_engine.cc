/** @file Tests for the parallel ExperimentEngine and the TraceCache:
 *  thread-count-independent determinism, plan construction, and trace
 *  sharing. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/experiment.h"
#include "harness/experiment_engine.h"
#include "workload/trace_cache.h"

namespace grit::harness {
namespace {

/** Small fast workload parameters. */
workload::WorkloadParams
fastParams()
{
    workload::WorkloadParams params;
    params.footprintDivisor = 64;
    params.intensity = 0.25;
    return params;
}

/** The 2-app x 3-config plan the determinism test sweeps. */
std::pair<std::vector<workload::AppId>, std::vector<LabeledConfig>>
smallSweep()
{
    const std::vector<workload::AppId> apps = {workload::AppId::kGemm,
                                               workload::AppId::kSt};
    const std::vector<LabeledConfig> configs = {
        {"on-touch", makeConfig(PolicyKind::kOnTouch, 4)},
        {"duplication", makeConfig(PolicyKind::kDuplication, 4)},
        {"grit", makeConfig(PolicyKind::kGrit, 4)},
    };
    return {apps, configs};
}

/** Full field-wise RunResult comparison. */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.localFaults, b.localFaults);
    EXPECT_EQ(a.protectionFaults, b.protectionFaults);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.peakReplicas, b.peakReplicas);
    EXPECT_EQ(a.schemeAccesses, b.schemeAccesses);
    for (unsigned k = 0; k < stats::kLatencyKinds; ++k) {
        const auto kind = static_cast<stats::LatencyKind>(k);
        EXPECT_EQ(a.breakdown.get(kind), b.breakdown.get(kind));
    }
    EXPECT_EQ(a.counters, b.counters);
}

TEST(ExperimentEngine, ThreadCountDoesNotChangeResults)
{
    const auto [apps, configs] = smallSweep();

    ExperimentEngine::Options serial;
    serial.jobs = 1;
    ExperimentEngine one(serial);
    const ResultMatrix m1 =
        one.run(RunPlan::matrix(apps, configs, fastParams()));

    ExperimentEngine::Options parallel;
    parallel.jobs = 4;
    ExperimentEngine four(parallel);
    const ResultMatrix m4 =
        four.run(RunPlan::matrix(apps, configs, fastParams()));

    ASSERT_EQ(m1.size(), 2u);
    ASSERT_EQ(m1.size(), m4.size());
    for (const auto &[row, runs] : m1) {
        ASSERT_TRUE(m4.count(row)) << row;
        ASSERT_EQ(runs.size(), m4.at(row).size());
        for (const auto &[label, result] : runs) {
            SCOPED_TRACE(row + "/" + label);
            ASSERT_TRUE(m4.at(row).count(label));
            expectSameResult(result, m4.at(row).at(label));
        }
    }
}

TEST(ExperimentEngine, RunMatchesResilientExecutor)
{
    // run() is a front end over runResilient(); both must produce the
    // same matrix for the same plan.
    const auto [apps, configs] = smallSweep();
    const RunPlan plan = RunPlan::matrix(apps, configs, fastParams());

    ExperimentEngine engine;  // auto jobs
    const ResultMatrix direct = engine.run(plan);

    ExperimentEngine resilient;
    const SweepResult sweep =
        resilient.runResilient(plan, ResilientOptions{});
    EXPECT_TRUE(sweep.complete());

    ASSERT_EQ(direct.size(), sweep.matrix.size());
    for (const auto &[row, runs] : direct)
        for (const auto &[label, result] : runs) {
            SCOPED_TRACE(row + "/" + label);
            expectSameResult(result, sweep.matrix.at(row).at(label));
        }
}

TEST(ExperimentEngine, SharesTracesAcrossConfigs)
{
    // Streamed replay (the default): the unit of sharing is the chunk.
    // Each cell opens one stream per GPU; the workload is small enough
    // to fit one chunk, so the first config generates apps x gpus
    // chunks and every other config's streams hit the chunk LRU.
    const auto [apps, configs] = smallSweep();
    const std::size_t gpus = configs.front().config.numGpus;
    ExperimentEngine engine;
    engine.run(RunPlan::matrix(apps, configs, fastParams()));
    EXPECT_EQ(engine.traceCache().misses(), apps.size() * gpus);
    EXPECT_EQ(engine.traceCache().hits(),
              apps.size() * gpus * (configs.size() - 1));
}

TEST(ExperimentEngine, SharesMaterializedTracesAcrossConfigs)
{
    // GRIT_STREAM_TRACES=0 opts back into materialized replay, where
    // the unit of sharing is the whole trace: one generation per app;
    // the other config cells reuse it.
    const auto [apps, configs] = smallSweep();
    ::setenv("GRIT_STREAM_TRACES", "0", 1);
    ExperimentEngine engine;
    ::unsetenv("GRIT_STREAM_TRACES");
    engine.run(RunPlan::matrix(apps, configs, fastParams()));
    EXPECT_EQ(engine.traceCache().misses(), apps.size());
    EXPECT_EQ(engine.traceCache().hits(),
              apps.size() * (configs.size() - 1));
}

TEST(ExperimentEngine, JobsResolution)
{
    ExperimentEngine::Options options;
    options.jobs = 3;
    EXPECT_EQ(ExperimentEngine(options).jobs(), 3u);
    EXPECT_GE(ExperimentEngine().jobs(), 1u);
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(RunPlan, MatrixCrossProductAndRowLabels)
{
    const auto [apps, configs] = smallSweep();
    const RunPlan plan = RunPlan::matrix(apps, configs, fastParams());
    ASSERT_EQ(plan.size(), apps.size() * configs.size());
    EXPECT_EQ(plan.cells()[0].row, "GEMM");
    EXPECT_EQ(plan.cells()[0].label, "on-touch");
    // numGpus follows the configuration, not the input params.
    for (const RunCell &cell : plan.cells())
        EXPECT_EQ(cell.params.numGpus, cell.config.numGpus);
}

TEST(RunPlan, MutateHookScalesParams)
{
    const auto [apps, configs] = smallSweep();
    const RunPlan plan = RunPlan::matrix(
        apps, configs, fastParams(),
        [](workload::AppId app, workload::WorkloadParams &p) {
            if (app == workload::AppId::kSt)
                p.intensity = 0.5;
        });
    for (const RunCell &cell : plan.cells()) {
        const double expected =
            cell.app == workload::AppId::kSt ? 0.5 : 0.25;
        EXPECT_DOUBLE_EQ(cell.params.intensity, expected);
    }
}

TEST(TraceCache, ReusesGeneratedTraces)
{
    workload::TraceCache cache;
    const auto params = fastParams();

    const auto a = cache.get(workload::AppId::kGemm, params);
    const auto b = cache.get(workload::AppId::kGemm, params);
    ASSERT_TRUE(a);
    EXPECT_EQ(a.get(), b.get());  // same shared instance
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    // A different key generates its own trace.
    workload::WorkloadParams other = params;
    other.seed = 99;
    const auto c = cache.get(workload::AppId::kGemm, other);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(TraceCache, ClearKeepsHandlesValid)
{
    workload::TraceCache cache;
    const auto handle = cache.get(workload::AppId::kBs, fastParams());
    const std::uint64_t accesses = handle->totalAccesses();
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(handle->totalAccesses(), accesses);  // still alive
    // Next get regenerates (a fresh miss) and matches deterministically.
    const auto again = cache.get(workload::AppId::kBs, fastParams());
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(again->totalAccesses(), accesses);
}

}  // namespace
}  // namespace grit::harness
