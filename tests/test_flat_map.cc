/** @file Tests for sim::FlatMap, the open-addressing table behind the
 *  simulator's hot-path maps: lookup/insert/erase semantics, tombstone
 *  reuse, rehash survival, pointer stability, and the deterministic
 *  iteration order the audit and JSON layers rely on. */

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/flat_map.h"
#include "simcore/rng.h"

namespace grit::sim {
namespace {

TEST(FlatMap, InsertFindEraseBasics)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(7), nullptr);
    EXPECT_FALSE(map.erase(7));

    map[7] = 42;
    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 42);
    EXPECT_TRUE(map.contains(7));
    EXPECT_EQ(map.size(), 1u);

    map.insertOrAssign(7, 43);
    EXPECT_EQ(*map.find(7), 43);
    EXPECT_EQ(map.size(), 1u);  // overwrite, not duplicate

    EXPECT_TRUE(map.erase(7));
    EXPECT_EQ(map.find(7), nullptr);
    EXPECT_TRUE(map.empty());
}

TEST(FlatMap, OperatorBracketDefaultConstructs)
{
    FlatMap<int, std::vector<int>> map;
    EXPECT_TRUE(map[5].empty());  // created on first touch
    map[5].push_back(1);
    EXPECT_EQ(map[5].size(), 1u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, TombstonesAreRecycled)
{
    // The PA-Table lifecycle: insert until a threshold, then erase.
    // Cycling a bounded working set through insert/erase many times
    // must not grow live size, and erased keys must stay gone.
    FlatMap<std::uint64_t, int> map;
    for (int round = 0; round < 200; ++round) {
        for (std::uint64_t k = 0; k < 64; ++k)
            map[k] = round;
        for (std::uint64_t k = 0; k < 64; ++k)
            EXPECT_TRUE(map.erase(k));
    }
    EXPECT_TRUE(map.empty());
    for (std::uint64_t k = 0; k < 64; ++k)
        EXPECT_EQ(map.find(k), nullptr);

    // A tombstoned slot is reusable: reinsert after the churn works.
    map[3] = 1234;
    ASSERT_NE(map.find(3), nullptr);
    EXPECT_EQ(*map.find(3), 1234);
}

TEST(FlatMap, SurvivesRehashGrowth)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    constexpr std::uint64_t kN = 10000;  // forces many doublings
    for (std::uint64_t k = 0; k < kN; ++k)
        map[k * 977] = k;
    ASSERT_EQ(map.size(), kN);
    for (std::uint64_t k = 0; k < kN; ++k) {
        const std::uint64_t *v = map.find(k * 977);
        ASSERT_NE(v, nullptr) << k;
        EXPECT_EQ(*v, k);
    }
    EXPECT_EQ(map.find(1), nullptr);  // 1 is not a multiple of 977
}

TEST(FlatMap, PointersStayValidAcrossRehashAndErase)
{
    // The GMMU holds PageInfo& across directory inserts; the contract
    // is chunked never-relocating cells.
    FlatMap<std::uint64_t, std::string> map;
    map[1] = "one";
    const std::string *pinned = map.find(1);
    ASSERT_NE(pinned, nullptr);

    for (std::uint64_t k = 2; k < 5000; ++k)
        map[k] = "x";  // multiple rehashes
    for (std::uint64_t k = 2; k < 2500; ++k)
        map.erase(k);

    EXPECT_EQ(map.find(1), pinned);  // same cell, same address
    EXPECT_EQ(*pinned, "one");
}

TEST(FlatMap, IterationIsInsertionOrderWithoutErases)
{
    FlatMap<std::uint64_t, int> map;
    const std::vector<std::uint64_t> keys = {42, 7, 1000000007ull, 3, 99};
    for (std::size_t i = 0; i < keys.size(); ++i)
        map[keys[i]] = static_cast<int>(i);

    std::vector<std::uint64_t> seen;
    for (const auto &[k, v] : map)
        seen.push_back(k);
    EXPECT_EQ(seen, keys);
}

TEST(FlatMap, IterationIsAPureFunctionOfTheOperationSequence)
{
    // Two maps fed the identical randomized operation sequence must
    // iterate identically — the determinism contract audits and JSON
    // exports depend on (std::unordered_map does not give this).
    auto build = [] {
        auto map = std::make_unique<FlatMap<std::uint64_t, int>>();
        Rng rng(2024);
        for (int i = 0; i < 5000; ++i) {
            const std::uint64_t key = rng.next() % 512;
            if (rng.next() % 3 == 0)
                map->erase(key);
            else
                (*map)[key] = i;
        }
        return map;
    };
    const auto a = build();
    const auto b = build();

    auto ia = a->begin();
    auto ib = b->begin();
    for (; ia != a->end() && ib != b->end(); ++ia, ++ib) {
        EXPECT_EQ(ia->first, ib->first);
        EXPECT_EQ(ia->second, ib->second);
    }
    EXPECT_EQ(ia == a->end(), ib == b->end());
}

TEST(FlatMap, MatchesUnorderedMapUnderRandomChurn)
{
    // Model-based check against std::unordered_map over a mixed
    // insert/overwrite/erase/lookup workload.
    FlatMap<std::uint64_t, int> map;
    std::unordered_map<std::uint64_t, int> reference;
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = rng.next() % 2048;
        switch (rng.next() % 4) {
        case 0:
            map[key] = i;
            reference[key] = i;
            break;
        case 1:
            map.insertOrAssign(key, -i);
            reference[key] = -i;
            break;
        case 2:
            EXPECT_EQ(map.erase(key), reference.erase(key) > 0);
            break;
        default: {
            const int *v = map.find(key);
            const auto it = reference.find(key);
            ASSERT_EQ(v != nullptr, it != reference.end()) << key;
            if (v != nullptr)
                EXPECT_EQ(*v, it->second);
        }
        }
        ASSERT_EQ(map.size(), reference.size());
    }
    for (const auto &[k, v] : map) {
        const auto it = reference.find(k);
        ASSERT_NE(it, reference.end()) << k;
        EXPECT_EQ(v, it->second);
    }
}

TEST(FlatMap, ClearReleasesEverything)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map[k] = 1;
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(5), nullptr);
    map[5] = 6;  // usable after clear
    EXPECT_EQ(*map.find(5), 6);
}

TEST(FlatMap, ReserveAvoidsNothingButStaysCorrect)
{
    FlatMap<std::uint64_t, int> map;
    map.reserve(5000);
    for (std::uint64_t k = 0; k < 5000; ++k)
        map[k] = static_cast<int>(k);
    for (std::uint64_t k = 0; k < 5000; ++k)
        ASSERT_EQ(*map.find(k), static_cast<int>(k));
}

}  // namespace
}  // namespace grit::sim
