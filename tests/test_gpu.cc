/** @file Unit tests for the GPU model: translation path, flushes, GMMU,
 *  TB scheduler, and remote/fault slots. */

#include <gtest/gtest.h>

#include "gpu/gmmu.h"
#include "gpu/gpu.h"
#include "gpu/tb_scheduler.h"
#include "mem/page_geometry.h"

namespace grit::gpu {
namespace {

GpuConfig
smallConfig()
{
    GpuConfig config;
    config.lanes = 2;
    return config;
}

/** Default 4 KB geometry; static so constructed Gpus may keep the ref. */
const mem::PageGeometry &
testGeometry()
{
    static const mem::PageGeometry geo{};
    return geo;
}

TEST(Gmmu, ColdWalkCostsFourLevels)
{
    Gmmu gmmu(GmmuConfig{});
    const WalkResult walk = gmmu.walk(100, 0);
    EXPECT_EQ(walk.accesses, 4u);
    EXPECT_EQ(walk.completion, 400u);  // 4 levels x 100 cycles
}

TEST(Gmmu, WarmWalkHitsWalkCache)
{
    Gmmu gmmu(GmmuConfig{});
    gmmu.walk(100, 0);
    const WalkResult walk = gmmu.walk(100, 1000);
    EXPECT_EQ(walk.accesses, 1u);
    EXPECT_EQ(walk.completion, 1100u);
}

TEST(Gmmu, WalkersParallelUpToEight)
{
    Gmmu gmmu(GmmuConfig{});
    sim::Cycle last = 0;
    for (unsigned i = 0; i < 9; ++i) {
        // Distinct top-level regions: all cold walks.
        const sim::PageId page = static_cast<sim::PageId>(i) << 27;
        last = std::max(last, gmmu.walk(page, 0).completion);
    }
    // Nine 400-cycle walks over eight walkers: the ninth queues.
    EXPECT_EQ(last, 800u);
    EXPECT_EQ(gmmu.walks(), 9u);
}

TEST(Gpu, TranslateFaultsOnUnmappedPage)
{
    Gpu gpu(0, smallConfig(), testGeometry());
    const TranslateOutcome out = gpu.translate(0, 42, false, 0);
    EXPECT_TRUE(out.fault);
    EXPECT_FALSE(out.protectionFault);
    EXPECT_GT(out.walkCycles, 0u);  // walked before faulting
}

TEST(Gpu, TranslateHitsAfterInstallAndFill)
{
    Gpu gpu(0, smallConfig(), testGeometry());
    gpu.pageTable().install(42, mem::MappingKind::kLocal, 0, true);
    TranslateOutcome out = gpu.translate(0, 42, false, 0);
    EXPECT_FALSE(out.fault);
    ASSERT_NE(out.rec, nullptr);
    EXPECT_EQ(out.rec->location, 0);
    const sim::Cycle walked = out.readyAt;

    // Second access: L1 TLB hit, much faster.
    out = gpu.translate(0, 42, false, 1000);
    EXPECT_FALSE(out.fault);
    EXPECT_EQ(out.walkCycles, 0u);
    EXPECT_LT(out.readyAt - 1000, walked);
}

TEST(Gpu, WriteToReadOnlyReplicaRaisesProtectionFault)
{
    Gpu gpu(0, smallConfig(), testGeometry());
    gpu.pageTable().install(7, mem::MappingKind::kLocal, 0,
                            /*writable=*/false,
                            /*read_only_replica=*/true);
    const TranslateOutcome read = gpu.translate(0, 7, false, 0);
    EXPECT_FALSE(read.fault);
    EXPECT_FALSE(read.protectionFault);
    const TranslateOutcome write = gpu.translate(0, 7, true, 0);
    EXPECT_TRUE(write.protectionFault);
    EXPECT_FALSE(write.fault);
}

TEST(Gpu, InvalidatedPageFaultsAgain)
{
    Gpu gpu(0, smallConfig(), testGeometry());
    gpu.pageTable().install(9, mem::MappingKind::kLocal, 0, true);
    gpu.translate(0, 9, false, 0);  // fills TLBs
    gpu.pageTable().invalidate(9);
    gpu.invalidatePage(9);
    const TranslateOutcome out = gpu.translate(0, 9, false, 100);
    EXPECT_TRUE(out.fault);
}

TEST(Gpu, FlushForInvalidationWipesTlbsAndCosts)
{
    GpuConfig config = smallConfig();
    Gpu gpu(0, config, testGeometry());
    gpu.pageTable().install(3, mem::MappingKind::kLocal, 0, true);
    gpu.translate(0, 3, false, 0);

    const sim::Cycle done = gpu.flushForInvalidation(1000, 1500);
    EXPECT_EQ(done, 2500u);
    EXPECT_EQ(gpu.flushes(), 1u);

    // Next translation misses the TLBs and re-walks (PTE still valid).
    const TranslateOutcome out = gpu.translate(0, 3, false, 3000);
    EXPECT_FALSE(out.fault);
    EXPECT_GT(out.walkCycles, 0u);
}

TEST(Gpu, DramAccessAddsLatency)
{
    Gpu gpu(0, smallConfig(), testGeometry());
    const sim::Cycle done = gpu.dramAccess(0, 64);
    EXPECT_GE(done, gpu.config().dramLatency);
}

TEST(Gpu, RemoteSlotsThrottleThroughput)
{
    GpuConfig config = smallConfig();
    config.nvlinkSlots = 2;
    Gpu gpu(0, config, testGeometry());
    EXPECT_EQ(gpu.remoteSlot(0, 100, false), 100u);
    EXPECT_EQ(gpu.remoteSlot(0, 100, false), 100u);
    EXPECT_EQ(gpu.remoteSlot(0, 100, false), 200u);  // queues
}

TEST(Gpu, PcieAndNvlinkSlotsAreSeparate)
{
    GpuConfig config = smallConfig();
    config.nvlinkSlots = 1;
    config.pcieSlots = 1;
    Gpu gpu(0, config, testGeometry());
    gpu.remoteSlot(0, 100, /*to_host=*/false);
    // The PCIe pool is untouched by NVLink occupancy.
    EXPECT_EQ(gpu.remoteSlot(0, 100, /*to_host=*/true), 100u);
}

TEST(Gpu, FaultSlotsThrottleFaultStorms)
{
    GpuConfig config = smallConfig();
    config.faultSlots = 2;
    Gpu gpu(0, config, testGeometry());
    gpu.faultSlot(0, 1000);
    gpu.faultSlot(0, 1000);
    EXPECT_EQ(gpu.faultSlot(0, 1000), 2000u);
}

TEST(Gpu, LinesPerPageFollowsGeometry)
{
    const GpuConfig config = smallConfig();
    EXPECT_EQ(Gpu(0, config, testGeometry()).linesPerPage(), 64u);
    static const mem::PageGeometry huge_base{2 * 1024 * 1024};
    EXPECT_EQ(Gpu(1, config, huge_base).linesPerPage(), 32768u);
}

// ---------------------------------------------------------------- TbScheduler

TEST(TbScheduler, ContiguousPartition)
{
    TbScheduler sched(100, 4);
    EXPECT_EQ(sched.blockCount(0), 25u);
    EXPECT_EQ(sched.firstBlock(0), 0u);
    EXPECT_EQ(sched.firstBlock(3), 75u);
    EXPECT_EQ(sched.gpuFor(0), 0);
    EXPECT_EQ(sched.gpuFor(24), 0);
    EXPECT_EQ(sched.gpuFor(25), 1);
    EXPECT_EQ(sched.gpuFor(99), 3);
}

TEST(TbScheduler, UnevenDivisionFillsEarlierGpusFirst)
{
    TbScheduler sched(10, 4);  // 3,3,2,2
    EXPECT_EQ(sched.blockCount(0), 3u);
    EXPECT_EQ(sched.blockCount(2), 2u);
    EXPECT_EQ(sched.gpuFor(2), 0);
    EXPECT_EQ(sched.gpuFor(3), 1);
    EXPECT_EQ(sched.gpuFor(6), 2);
    EXPECT_EQ(sched.gpuFor(9), 3);
}

/** Property: gpuFor inverts firstBlock/blockCount for any geometry. */
class TbSchedulerProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

TEST_P(TbSchedulerProperty, PartitionIsConsistent)
{
    const auto [blocks, gpus] = GetParam();
    TbScheduler sched(blocks, gpus);
    std::uint64_t total = 0;
    for (unsigned g = 0; g < gpus; ++g) {
        const std::uint64_t first = sched.firstBlock(g);
        const std::uint64_t count = sched.blockCount(g);
        total += count;
        for (std::uint64_t tb = first; tb < first + count; ++tb)
            EXPECT_EQ(sched.gpuFor(tb), static_cast<sim::GpuId>(g));
    }
    EXPECT_EQ(total, blocks);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TbSchedulerProperty,
    ::testing::Combine(::testing::Values(1ull, 7ull, 64ull, 1000ull),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u)));

}  // namespace
}  // namespace grit::gpu
