/** @file Unit tests for the GRIT policy: fault-aware initiation, scheme
 *  changes, capacity-refault filtering, and the ablation flags. */

#include <gtest/gtest.h>

#include <memory>

#include "core/grit_policy.h"
#include "test_util.h"

namespace grit::core {
namespace {

using test::MiniSystem;

/** Build a MiniSystem driven by GRIT with @p config. */
std::pair<std::unique_ptr<MiniSystem>, GritPolicy *>
gritSystem(const GritConfig &config = {}, unsigned gpus = 2,
           std::uint64_t capacity = 0)
{
    auto sys = std::make_unique<MiniSystem>(gpus, capacity);
    auto policy = std::make_unique<GritPolicy>(config);
    GritPolicy *raw = policy.get();
    sys->usePolicy(std::move(policy));
    return {std::move(sys), raw};
}

TEST(GritPolicy, StartsUnderOnTouch)
{
    auto [sys, grit] = gritSystem();
    EXPECT_EQ(grit->schemeOf(10), mem::Scheme::kOnTouch);
    EXPECT_FALSE(grit->countsRemote(10));

    // First faults behave as on-touch migrations.
    sys->driver->handleFault(0, 10, false, false, 0);
    EXPECT_EQ(sys->driver->directory().ownerOf(10), 0);
    sys->driver->handleFault(1, 10, false, false, 100000);
    EXPECT_EQ(sys->driver->directory().ownerOf(10), 1);
}

TEST(GritPolicy, ReadSharedPageConvertsToDuplication)
{
    auto [sys, grit] = gritSystem();
    // Four read faults (ping-pong between two GPUs) reach the default
    // threshold; all reads -> duplication (Fig. 13).
    sim::Cycle t = 0;
    for (int i = 0; i < 4; ++i) {
        sys->driver->handleFault(i % 2, 10, false, false, t);
        t += 100000;
    }
    EXPECT_EQ(grit->schemeOf(10), mem::Scheme::kDuplication);
    EXPECT_EQ(grit->schemeChanges(), 1u);
    EXPECT_EQ(sys->stats.get("grit.changes_to_duplication"), 1u);

    // The triggering (fourth) fault already resolved under the new
    // scheme: GPU 1 received a replica instead of migrating the page.
    EXPECT_EQ(sys->driver->directory().ownerOf(10), 0);
    EXPECT_TRUE(sys->driver->directory().find(10)->hasReplica(1));
}

TEST(GritPolicy, WrittenSharedPageConvertsToAccessCounter)
{
    auto [sys, grit] = gritSystem();
    sim::Cycle t = 0;
    for (int i = 0; i < 4; ++i) {
        sys->driver->handleFault(i % 2, 10, i == 1, false, t);
        t += 100000;
    }
    // One write among the faults: sticky R/W bit -> access counter.
    EXPECT_EQ(grit->schemeOf(10), mem::Scheme::kAccessCounter);
    EXPECT_TRUE(grit->countsRemote(10));
    EXPECT_EQ(sys->stats.get("grit.changes_to_access_counter"), 1u);

    // The triggering fault already resolved as a remote mapping: GPU 1
    // now reads GPU 0's copy over the fabric.
    EXPECT_EQ(sys->driver->directory().ownerOf(10), 0);
    EXPECT_EQ(sys->gpu(1).pageTable().find(10)->kind,
              mem::MappingKind::kRemote);
}

TEST(GritPolicy, ThresholdIsConfigurable)
{
    GritConfig config;
    config.faultThreshold = 2;
    auto [sys, grit] = gritSystem(config);
    sys->driver->handleFault(0, 10, false, false, 0);
    sys->driver->handleFault(1, 10, false, false, 100000);
    EXPECT_EQ(grit->schemeOf(10), mem::Scheme::kDuplication);
}

TEST(GritPolicy, CapacityRefaultsDoNotAdvanceCounter)
{
    // Two-frame GPUs: private pages spill and refault repeatedly.
    auto [sys, grit] = gritSystem({}, 2, /*capacity=*/2);
    sim::Cycle t = 0;
    // GPU 0 cycles through three private pages many times.
    for (int round = 0; round < 4; ++round) {
        for (sim::PageId p = 1; p <= 3; ++p) {
            sys->driver->handleFault(0, p, false, false, t);
            t += 100000;
        }
    }
    // Despite 4 faults per page, the spill refaults carried no sharing
    // signal: every page stays on the default scheme.
    for (sim::PageId p = 1; p <= 3; ++p)
        EXPECT_EQ(grit->schemeOf(p), mem::Scheme::kOnTouch) << p;
    EXPECT_GT(sys->stats.get("grit.capacity_refaults"), 0u);
    EXPECT_EQ(grit->schemeChanges(), 0u);
}

TEST(GritPolicy, NapPropagatesToNeighbors)
{
    GritConfig config;
    config.faultThreshold = 2;
    auto [sys, grit] = gritSystem(config);
    // Pages 0..4 of the aligned 8-group become duplication one by one;
    // when the majority is reached the rest of the group follows.
    sim::Cycle t = 0;
    for (sim::PageId p = 0; p < 5; ++p) {
        sys->driver->handleFault(0, p, false, false, t);
        t += 100000;
        sys->driver->handleFault(1, p, false, false, t);
        t += 100000;
    }
    EXPECT_GT(grit->napAdoptions(), 0u);
    // All eight pages of the group now share the scheme.
    for (sim::PageId p = 0; p < 8; ++p) {
        EXPECT_EQ(sys->driver->centralTable().scheme(p),
                  mem::Scheme::kDuplication)
            << p;
    }
    EXPECT_EQ(sys->driver->centralTable().groupBits(0),
              mem::GroupBits::kPages8);
}

TEST(GritPolicy, NapDisabledLeavesNeighborsAlone)
{
    GritConfig config;
    config.faultThreshold = 2;
    config.napEnabled = false;
    auto [sys, grit] = gritSystem(config);
    sim::Cycle t = 0;
    for (sim::PageId p = 0; p < 5; ++p) {
        sys->driver->handleFault(0, p, false, false, t);
        t += 100000;
        sys->driver->handleFault(1, p, false, false, t);
        t += 100000;
    }
    EXPECT_EQ(grit->napAdoptions(), 0u);
    EXPECT_EQ(sys->driver->centralTable().scheme(7), mem::Scheme::kNone);
}

TEST(GritPolicy, PaCacheDisabledStillDecides)
{
    GritConfig config;
    config.faultThreshold = 2;
    config.paCacheEnabled = false;
    auto [sys, grit] = gritSystem(config);
    sys->driver->handleFault(0, 10, false, false, 0);
    sys->driver->handleFault(1, 10, false, false, 100000);
    EXPECT_EQ(grit->schemeOf(10), mem::Scheme::kDuplication);
    EXPECT_EQ(grit->paCache(), nullptr);
    EXPECT_GT(grit->paTable().writes(), 0u);
}

TEST(GritPolicy, SchemeResetFromDuplicationDropsReplicas)
{
    GritConfig config;
    config.faultThreshold = 2;
    auto [sys, grit] = gritSystem(config, 3);
    // Convert page 10 to duplication and replicate it.
    sys->driver->handleFault(0, 10, false, false, 0);
    sys->driver->handleFault(1, 10, false, false, 100000);
    EXPECT_EQ(grit->schemeOf(10), mem::Scheme::kDuplication);
    sys->driver->handleFault(2, 10, false, false, 200000);
    EXPECT_FALSE(sys->driver->directory().find(10)->replicas.empty());

    // Two write faults flip the page to access counter; replicas die.
    sys->driver->handleFault(1, 10, true, true, 300000);
    sys->driver->handleFault(2, 10, true, false, 400000);
    EXPECT_EQ(grit->schemeOf(10), mem::Scheme::kAccessCounter);
    EXPECT_TRUE(sys->driver->directory().find(10)->replicas.empty());
}

TEST(GritPolicy, FaultOverheadReflectsPaMachinery)
{
    GritConfig config;
    config.paCacheEnabled = false;
    config.paHiddenSlackCycles = 0;
    auto [sys, grit] = gritSystem(config);
    policy::FaultInfo info;
    info.gpu = 0;
    info.page = 10;
    info.coldTouch = true;  // counted fault (not a capacity refault)
    grit->onFault(info, 0);
    // Without the PA-Cache every fault pays PA-Table memory accesses.
    EXPECT_GT(grit->faultOverhead(info, 0), 0u);
}

TEST(GritPolicy, ResetClearsLearnedState)
{
    GritConfig config;
    config.faultThreshold = 2;
    auto [sys, grit] = gritSystem(config);
    sys->driver->handleFault(0, 10, false, false, 0);
    sys->driver->handleFault(1, 10, false, false, 100000);
    EXPECT_EQ(grit->schemeChanges(), 1u);
    grit->reset();
    EXPECT_EQ(grit->schemeChanges(), 0u);
    EXPECT_EQ(grit->paTable().size(), 0u);
}

}  // namespace
}  // namespace grit::core
