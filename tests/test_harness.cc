/** @file Unit tests for the harness: configuration defaults (Table I),
 *  table formatting, and experiment helpers. */

#include <gtest/gtest.h>

#include "harness/config.h"
#include "harness/experiment.h"
#include "harness/table.h"

namespace grit::harness {
namespace {

TEST(SystemConfig, TableIDefaults)
{
    const SystemConfig config = makeConfig(PolicyKind::kGrit, 4);
    EXPECT_EQ(config.numGpus, 4u);
    EXPECT_EQ(config.geometry.baseSize, sim::kPageSize4K);
    EXPECT_FALSE(config.geometry.hugePages);
    EXPECT_DOUBLE_EQ(config.memoryFraction, 0.70);

    // Table I rows.
    EXPECT_EQ(config.gpu.lanes, 64u);                   // 64 CUs
    EXPECT_EQ(config.gpu.l1TlbEntries, 32u);            // L1 TLB
    EXPECT_EQ(config.gpu.l1TlbWays, 32u);
    EXPECT_EQ(config.gpu.l1TlbLatency, 1u);
    EXPECT_EQ(config.gpu.l2TlbEntries, 512u);           // L2 TLB
    EXPECT_EQ(config.gpu.l2TlbWays, 16u);
    EXPECT_EQ(config.gpu.l2TlbLatency, 10u);
    EXPECT_EQ(config.gpu.gmmu.walkers, 8u);             // 8 walkers
    EXPECT_EQ(config.gpu.gmmu.walkLevelLatency, 100u);  // 100 cy/level
    EXPECT_EQ(config.gpu.gmmu.walkCacheEntries, 128u);  // walk cache
    EXPECT_EQ(config.gpu.gmmu.walkQueueEntries, 64u);   // walk queue
    EXPECT_EQ(config.gpu.l2CacheBytes, 256u * 1024u);   // 256 KB L2
    EXPECT_EQ(config.gpu.l2CacheWays, 16u);
    EXPECT_EQ(config.gpu.counterThreshold, 256u);       // counters
    EXPECT_DOUBLE_EQ(config.fabric.nvlinkGBs, 300.0);   // NVLink-v2
    EXPECT_DOUBLE_EQ(config.fabric.pcieGBs, 32.0);      // PCIe-v4

    // GRIT defaults (Section V).
    EXPECT_EQ(config.grit.faultThreshold, 4u);
    EXPECT_TRUE(config.grit.paCacheEnabled);
    EXPECT_TRUE(config.grit.napEnabled);
    EXPECT_EQ(config.grit.paCacheEntries, 64u);
    EXPECT_EQ(config.grit.paCacheWays, 4u);
}

TEST(PolicyKindNames, RoundTrip)
{
    for (PolicyKind kind :
         {PolicyKind::kOnTouch, PolicyKind::kAccessCounter,
          PolicyKind::kDuplication, PolicyKind::kFirstTouch,
          PolicyKind::kIdeal, PolicyKind::kGrit, PolicyKind::kGriffinDpc,
          PolicyKind::kGps}) {
        EXPECT_EQ(policyKindFromName(policyKindName(kind)), kind);
    }
    EXPECT_EQ(policyKindFromName("GRIT"), PolicyKind::kGrit);
    EXPECT_FALSE(policyKindFromName("bogus").has_value());
}

TEST(TextTable, AlignsColumns)
{
    TextTable table({"a", "long-header"});
    table.addRow({"xx", "1"});
    table.addRow({"y"});  // short rows pad
    const std::string out = table.str();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("xx"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, Formatting)
{
    EXPECT_EQ(TextTable::fmt(1.234567), "1.23");
    EXPECT_EQ(TextTable::fmt(1.2, 0), "1");
    EXPECT_EQ(TextTable::pct(12.34), "+12.3%");
    EXPECT_EQ(TextTable::pct(-3.21), "-3.2%");
}

TEST(Experiment, SpeedupOver)
{
    RunResult base;
    base.cycles = 200;
    RunResult test;
    test.cycles = 100;
    EXPECT_DOUBLE_EQ(speedupOver(base, test), 2.0);
}

TEST(Experiment, SpeedupOverZeroCyclesThrows)
{
    RunResult base;
    base.cycles = 200;
    RunResult never_ran;  // cycles stays 0
    EXPECT_THROW(speedupOver(base, never_ran), std::invalid_argument);
}

TEST(Experiment, MatrixHelpers)
{
    ResultMatrix matrix;
    matrix["A"]["base"].cycles = 100;
    matrix["A"]["test"].cycles = 50;
    matrix["B"]["base"].cycles = 100;
    matrix["B"]["test"].cycles = 100;

    const auto speedups = speedupsVs(matrix, "base", "test");
    EXPECT_DOUBLE_EQ(speedups.at("A"), 2.0);
    EXPECT_DOUBLE_EQ(speedups.at("B"), 1.0);
    // Mean improvement: ((2.0 - 1) + (1.0 - 1)) / 2 = 50 %.
    EXPECT_NEAR(meanImprovementPct(matrix, "base", "test"), 50.0, 1e-9);
}

TEST(Experiment, OversubscriptionRate)
{
    RunResult r;
    r.accesses = 2000;
    r.evictions = 10;
    EXPECT_DOUBLE_EQ(r.oversubscriptionRate(), 5.0);
    RunResult empty;
    EXPECT_DOUBLE_EQ(empty.oversubscriptionRate(), 0.0);
}

}  // namespace
}  // namespace grit::harness
