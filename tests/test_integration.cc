/** @file Integration tests: full simulations of scaled-down workloads
 *  under every policy, checking cross-module invariants and the
 *  paper-level qualitative results. */

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/experiment_engine.h"
#include "workload/apps.h"
#include "workload/dnn.h"

namespace grit::harness {
namespace {

/** Small fast workload parameters for integration runs. */
workload::WorkloadParams
fastParams()
{
    workload::WorkloadParams params;
    params.footprintDivisor = 32;
    params.intensity = 0.5;
    return params;
}

/** All selectable policies. */
const std::vector<PolicyKind> kAllPolicies = {
    PolicyKind::kOnTouch,    PolicyKind::kAccessCounter,
    PolicyKind::kDuplication, PolicyKind::kFirstTouch,
    PolicyKind::kIdeal,       PolicyKind::kGrit,
    PolicyKind::kGriffinDpc,  PolicyKind::kGps,
};

class EveryPolicy : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(EveryPolicy, CompletesGemmWithSaneResults)
{
    const SystemConfig config = makeConfig(GetParam(), 4);
    const RunResult result =
        runApp(workload::AppId::kGemm, config, fastParams());
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.accesses, 0u);
    EXPECT_GT(result.totalFaults(), 0u);
    EXPECT_GT(result.breakdown.total(), 0u);
}

TEST_P(EveryPolicy, DeterministicAcrossRuns)
{
    const SystemConfig config = makeConfig(GetParam(), 2);
    workload::WorkloadParams params = fastParams();
    params.numGpus = 2;
    const workload::Workload w =
        workload::makeWorkload(workload::AppId::kBs, params);
    const RunResult a = runWorkload(config, w);
    const RunResult b = runWorkload(config, w);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalFaults(), b.totalFaults());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EveryPolicy, ::testing::ValuesIn(kAllPolicies),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        std::string name = policyKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Integration, SchemeMechanismCountersMatchPolicy)
{
    const auto params = fastParams();

    // On-touch migrates, never duplicates.
    auto ot = runApp(workload::AppId::kSt,
                     makeConfig(PolicyKind::kOnTouch, 4), params);
    auto get = [](const RunResult &r, const char *name) {
        for (const auto &[k, v] : r.counters)
            if (k == name)
                return v;
        return std::uint64_t{0};
    };
    EXPECT_GT(get(ot, "uvm.migrations") + get(ot, "uvm.host_migrations"),
              0u);
    EXPECT_EQ(get(ot, "uvm.duplications"), 0u);
    EXPECT_EQ(get(ot, "uvm.collapses"), 0u);

    // Duplication replicates and collapses, never counter-migrates.
    auto dup = runApp(workload::AppId::kSt,
                      makeConfig(PolicyKind::kDuplication, 4), params);
    EXPECT_GT(get(dup, "uvm.duplications"), 0u);
    EXPECT_GT(get(dup, "uvm.collapses"), 0u);
    EXPECT_EQ(get(dup, "uvm.counter_migrations"), 0u);

    // Access counter maps remote and issues counter migrations.
    auto ac = runApp(workload::AppId::kSt,
                     makeConfig(PolicyKind::kAccessCounter, 4), params);
    EXPECT_GT(get(ac, "uvm.remote_maps"), 0u);
    EXPECT_GT(get(ac, "sim.remote_accesses"), 0u);
}

TEST(Integration, IdealIsFastest)
{
    const auto params = fastParams();
    for (workload::AppId app :
         {workload::AppId::kGemm, workload::AppId::kFir}) {
        const auto ideal =
            runApp(app, makeConfig(PolicyKind::kIdeal, 4), params);
        for (PolicyKind kind :
             {PolicyKind::kOnTouch, PolicyKind::kAccessCounter,
              PolicyKind::kDuplication, PolicyKind::kGrit}) {
            const auto other = runApp(app, makeConfig(kind, 4), params);
            EXPECT_LE(ideal.cycles, other.cycles)
                << workload::appMeta(app).abbr << " vs "
                << policyKindName(kind);
        }
    }
}

TEST(Integration, GritChangesSchemesAtRuntime)
{
    const auto result = runApp(workload::AppId::kGemm,
                               makeConfig(PolicyKind::kGrit, 4),
                               fastParams());
    auto get = [&](const char *name) {
        for (const auto &[k, v] : result.counters)
            if (k == name)
                return v;
        return std::uint64_t{0};
    };
    EXPECT_GT(get("grit.triggers"), 0u);
    EXPECT_GT(get("grit.changes_to_duplication"), 0u);
    // GEMM's read-shared inputs end up under duplication (Fig. 19).
    const auto dup_accesses = result.schemeAccesses[static_cast<unsigned>(
        mem::Scheme::kDuplication)];
    EXPECT_GT(dup_accesses, 0u);
}

TEST(Integration, GritBeatsAccessCounterAndDuplicationOnAverage)
{
    // The headline claim at reduced scale: GRIT's mean speedup over the
    // uniform schemes is positive (paper: +60 % / +49 % / +29 %).
    const auto params = fastParams();
    std::vector<LabeledConfig> configs = {
        {"access-counter", makeConfig(PolicyKind::kAccessCounter, 4)},
        {"duplication", makeConfig(PolicyKind::kDuplication, 4)},
        {"grit", makeConfig(PolicyKind::kGrit, 4)},
    };
    const auto matrix = ExperimentEngine().run(RunPlan::matrix(
        {workload::AppId::kBfs, workload::AppId::kGemm,
         workload::AppId::kFir, workload::AppId::kBs},
        configs, params));
    EXPECT_GT(meanImprovementPct(matrix, "access-counter", "grit"), 0.0);
    EXPECT_GT(meanImprovementPct(matrix, "duplication", "grit"), 0.0);
}

TEST(Integration, TwoMbPagesReduceFaultsButMixAttributes)
{
    workload::WorkloadParams params = fastParams();
    SystemConfig small = makeConfig(PolicyKind::kOnTouch, 4);
    SystemConfig large = makeConfig(PolicyKind::kOnTouch, 4);
    large.geometry.baseSize = 64 * 1024;

    const workload::Workload w =
        workload::makeWorkload(workload::AppId::kGemm, params);
    const auto small_run = runWorkload(small, w);
    const auto large_run = runWorkload(large, w);
    // Fewer, bigger pages -> fewer faults.
    EXPECT_LT(large_run.totalFaults(), small_run.totalFaults());
}

TEST(Integration, PrefetcherReducesColdFaults)
{
    const auto params = fastParams();
    SystemConfig base = makeConfig(PolicyKind::kOnTouch, 4);
    SystemConfig with_pf = base;
    with_pf.prefetch = true;
    auto get = [](const RunResult &r, const char *name) {
        for (const auto &[k, v] : r.counters)
            if (k == name)
                return v;
        return std::uint64_t{0};
    };
    const auto plain = runApp(workload::AppId::kFir, base, params);
    const auto fetched = runApp(workload::AppId::kFir, with_pf, params);
    EXPECT_GT(get(fetched, "uvm.prefetches"), 0u);
    EXPECT_LT(get(fetched, "uvm.cold_migrations"),
              get(plain, "uvm.cold_migrations"));
}

TEST(Integration, DnnWorkloadsRunUnderGrit)
{
    workload::WorkloadParams params = fastParams();
    params.numGpus = 4;
    for (workload::DnnModel model :
         {workload::DnnModel::kVgg16, workload::DnnModel::kResNet18}) {
        const workload::Workload w =
            workload::makeDnnWorkload(model, params);
        const auto result =
            runWorkload(makeConfig(PolicyKind::kGrit, 4), w);
        EXPECT_GT(result.cycles, 0u);
        EXPECT_GT(result.totalFaults(), 0u);
    }
}

TEST(Integration, GpuCountScalesSystem)
{
    for (unsigned gpus : {2u, 8u}) {
        workload::WorkloadParams params = fastParams();
        params.numGpus = gpus;
        const auto result = runApp(workload::AppId::kC2d,
                                   makeConfig(PolicyKind::kGrit, gpus),
                                   params);
        EXPECT_GT(result.cycles, 0u);
    }
}

TEST(Integration, BreakdownCategoriesMatchScheme)
{
    const auto params = fastParams();
    const auto ot = runApp(workload::AppId::kBs,
                           makeConfig(PolicyKind::kOnTouch, 4), params);
    EXPECT_GT(ot.breakdown.get(stats::LatencyKind::kPageMigration), 0u);
    EXPECT_EQ(ot.breakdown.get(stats::LatencyKind::kPageDuplication),
              0u);
    EXPECT_EQ(ot.breakdown.get(stats::LatencyKind::kWriteCollapse), 0u);

    const auto dup =
        runApp(workload::AppId::kBs,
               makeConfig(PolicyKind::kDuplication, 4), params);
    EXPECT_GT(dup.breakdown.get(stats::LatencyKind::kPageDuplication),
              0u);
    EXPECT_GT(dup.breakdown.get(stats::LatencyKind::kWriteCollapse), 0u);
    EXPECT_EQ(dup.breakdown.get(stats::LatencyKind::kPageMigration), 0u);

    const auto ac =
        runApp(workload::AppId::kBs,
               makeConfig(PolicyKind::kAccessCounter, 4), params);
    EXPECT_GT(ac.breakdown.get(stats::LatencyKind::kRemoteAccess), 0u);
}

}  // namespace
}  // namespace grit::harness
