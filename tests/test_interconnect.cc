/** @file Unit tests for links and the pluggable fabric topologies. */

#include <gtest/gtest.h>

#include "interconnect/link.h"
#include "interconnect/topology.h"
#include "interconnect/topology_all_to_all.h"
#include "interconnect/topology_chiplet.h"
#include "interconnect/topology_ring.h"
#include "interconnect/topology_switch.h"

namespace grit::ic {
namespace {

TEST(Link, TransferAddsSerializationAndLatency)
{
    Link link("l", 1.0, 100);  // 1 B/cy, 100-cycle latency
    // 50 bytes: 50 cycles serialization + 100 latency.
    EXPECT_EQ(link.transfer(0, 50), 150u);
    EXPECT_EQ(link.bytesMoved(), 50u);
    EXPECT_EQ(link.busyCycles(), 50u);
}

TEST(Link, TableIBandwidths)
{
    // 300 GB/s NVLink: a 4 KB page serializes in ceil(4096/300) = 14 cy.
    Link nvlink("nv", 300.0, 0);
    EXPECT_EQ(nvlink.transfer(0, 4096), 14u);
    // 32 GB/s PCIe: 4096/32 = 128 cy.
    Link pcie("pcie", 32.0, 0);
    EXPECT_EQ(pcie.transfer(0, 4096), 128u);
}

TEST(Link, SingleChannelSerializes)
{
    // A one-channel pipe is a strict queue: the second payload waits
    // for the first even though both arrive at once.
    Link port("p", 1.0, 0, /*channels=*/1);
    EXPECT_EQ(port.transfer(0, 100), 100u);
    EXPECT_EQ(port.transfer(0, 100), 200u);
}

TEST(Factory, BuildsEveryKind)
{
    FabricConfig config;
    config.numGpus = 4;
    for (TopologyKind kind : kAllTopologyKinds) {
        config.kind = kind;
        auto fabric = makeTopology(config);
        ASSERT_NE(fabric, nullptr);
        EXPECT_EQ(fabric->kind(), kind);
        EXPECT_EQ(fabric->numGpus(), 4u);
        EXPECT_STREQ(topologyKindName(fabric->kind()),
                     topologyKindName(kind));
    }
    EXPECT_EQ(topologyKindFromName("Ring"), TopologyKind::kRing);
    EXPECT_EQ(topologyKindFromName("bogus"), std::nullopt);
}

TEST(AllToAll, GpuToGpuUsesNvlinkLatency)
{
    FabricConfig config;
    config.numGpus = 4;
    AllToAllTopology fabric(config);
    const sim::Cycle done = fabric.transfer(0, 0, 1, 4096);
    // 14 cycles serialization + 700 NVLink latency.
    EXPECT_EQ(done, 714u);
    EXPECT_EQ(fabric.flightLatency(0, 1), 700u);
}

TEST(AllToAll, HostTransfersUsePcie)
{
    FabricConfig config;
    config.numGpus = 2;
    AllToAllTopology fabric(config);
    EXPECT_EQ(fabric.transfer(0, sim::kHostId, 0, 4096), 1128u);
    EXPECT_EQ(fabric.transfer(0, 0, sim::kHostId, 4096), 1128u);
    EXPECT_EQ(fabric.flightLatency(sim::kHostId, 1), 1000u);
    EXPECT_EQ(fabric.pcieBytes(), 8192u);
}

TEST(AllToAll, MessagesAreLatencyOnly)
{
    FabricConfig config;
    config.numGpus = 2;
    AllToAllTopology fabric(config);
    // Control messages never queue behind bulk DMAs.
    fabric.transfer(0, 0, 1, 1 << 20);  // big DMA
    EXPECT_EQ(fabric.message(0, 0, 1), 700u);
    EXPECT_EQ(fabric.message(0, 0, sim::kHostId), 1000u);
    EXPECT_EQ(fabric.messages(), 2u);
}

TEST(AllToAll, MessageByteAccounting)
{
    FabricConfig config;
    config.numGpus = 2;
    AllToAllTopology fabric(config);
    // Default control packet is 64 bytes; explicit sizes accumulate.
    fabric.message(0, 0, 1);
    fabric.message(0, 1, 0, 32);
    EXPECT_EQ(fabric.messages(), 2u);
    EXPECT_EQ(fabric.messageBytes(), 96u);
}

TEST(AllToAll, NvlinkByteAccounting)
{
    FabricConfig config;
    config.numGpus = 2;
    AllToAllTopology fabric(config);
    fabric.transfer(0, 0, 1, 1000);
    EXPECT_EQ(fabric.nvlinkBytes(), 1000u);  // egress side accounting
}

TEST(AllToAll, ResetClearsOccupancyAndMessages)
{
    FabricConfig config;
    config.numGpus = 2;
    AllToAllTopology fabric(config);
    fabric.transfer(0, 0, 1, 1 << 20);
    fabric.message(0, 0, 1);
    fabric.reset();
    EXPECT_EQ(fabric.nvlinkBytes(), 0u);
    EXPECT_EQ(fabric.messages(), 0u);
    EXPECT_EQ(fabric.messageBytes(), 0u);
    EXPECT_EQ(fabric.transfer(0, 0, 1, 300), 701u);
}

TEST(AllToAll, LinkStatsEnumeratesPorts)
{
    FabricConfig config;
    config.numGpus = 2;
    AllToAllTopology fabric(config);
    fabric.transfer(0, 0, 1, 1000);
    const auto stats = fabric.linkStats();
    // 2 GPUs x (out + in) + pcie.up + pcie.down.
    ASSERT_EQ(stats.size(), 6u);
    std::uint64_t total = 0;
    bool saw_egress = false;
    for (const LinkStat &link : stats) {
        total += link.bytes;
        if (link.name == "gpu0.nvlink.out") {
            saw_egress = true;
            EXPECT_EQ(link.bytes, 1000u);
        }
    }
    EXPECT_TRUE(saw_egress);
    EXPECT_EQ(total, 2000u);  // egress + ingress sides both carried it
}

TEST(Ring, MultiHopComposesSerializationAndLatency)
{
    FabricConfig config;
    config.kind = TopologyKind::kRing;
    config.numGpus = 4;
    RingTopology fabric(config);
    // Two hops, store-and-forward: each is 14 cy serialization + 700
    // latency, and the second starts only when the first delivered.
    EXPECT_EQ(fabric.transfer(0, 0, 2, 4096), 1428u);
    EXPECT_EQ(fabric.flightLatency(0, 2), 1400u);
    // A payload crossing two segments occupies the fabric twice.
    EXPECT_EQ(fabric.nvlinkBytes(), 2u * 4096u);
}

TEST(Ring, RoutesTheShorterArc)
{
    FabricConfig config;
    config.kind = TopologyKind::kRing;
    config.numGpus = 4;
    RingTopology fabric(config);
    // 0 -> 3 is one counter-clockwise hop, not three clockwise ones.
    EXPECT_EQ(fabric.transfer(0, 0, 3, 4096), 714u);
    EXPECT_EQ(fabric.flightLatency(0, 3), 700u);
    const auto stats = fabric.linkStats();
    for (const LinkStat &link : stats) {
        if (link.name == "gpu0.ring.ccw") {
            EXPECT_EQ(link.bytes, 4096u);
        } else if (link.name == "gpu0.ring.cw") {
            EXPECT_EQ(link.bytes, 0u);
        }
    }
}

TEST(Ring, HostTrafficBypassesTheRing)
{
    FabricConfig config;
    config.kind = TopologyKind::kRing;
    config.numGpus = 4;
    RingTopology fabric(config);
    EXPECT_EQ(fabric.transfer(0, sim::kHostId, 2, 4096), 1128u);
    EXPECT_EQ(fabric.nvlinkBytes(), 0u);
    EXPECT_EQ(fabric.pcieBytes(), 4096u);
}

TEST(Switch, TwoHopFlight)
{
    FabricConfig config;
    config.kind = TopologyKind::kSwitch;
    config.numGpus = 4;
    SwitchTopology fabric(config);
    // Egress (14 + 700), then the crossbar port (14 + 100).
    EXPECT_EQ(fabric.transfer(0, 0, 2, 4096), 828u);
    EXPECT_EQ(fabric.flightLatency(0, 2), 800u);
}

TEST(Switch, OutputPortContentionSerializes)
{
    FabricConfig config;
    config.kind = TopologyKind::kSwitch;
    config.numGpus = 4;
    SwitchTopology fabric(config);
    // Two senders target GPU 2 at the same cycle. Their egress ports
    // are independent (both deliver into the switch at 714), but GPU
    // 2's single-channel output port serializes the payloads.
    EXPECT_EQ(fabric.transfer(0, 0, 2, 4096), 828u);
    EXPECT_EQ(fabric.transfer(0, 1, 2, 4096), 842u);  // +14 cy queued
}

TEST(Switch, RadixFoldsPorts)
{
    FabricConfig config;
    config.kind = TopologyKind::kSwitch;
    config.numGpus = 4;
    config.switchRadix = 2;  // GPUs 0/2 and 1/3 share output ports
    SwitchTopology fabric(config);
    // Different destinations, same port (0 and 2 both map to port 0):
    // the second transfer still queues.
    EXPECT_EQ(fabric.transfer(0, 1, 0, 4096), 828u);
    EXPECT_EQ(fabric.transfer(0, 3, 2, 4096), 842u);
}

TEST(Chiplet, LocalRemoteAsymmetry)
{
    FabricConfig config;
    config.kind = TopologyKind::kChiplet;
    config.numGpus = 4;
    ChipletTopology fabric(config);
    // Intra-chiplet (0 -> 1): wide parallel ports, 7 + 200.
    const sim::Cycle local = fabric.transfer(0, 0, 1, 4096);
    EXPECT_EQ(local, 207u);
    // Cross-interposer (0 -> 2): out (207), narrow bridge (41 + 1200),
    // then the remote ingress port (7 + 200).
    const sim::Cycle remote = fabric.transfer(0, 0, 2, 4096);
    EXPECT_EQ(remote, 1655u);
    EXPECT_GT(remote, 5 * local);
    EXPECT_EQ(fabric.flightLatency(0, 1), 200u);
    EXPECT_EQ(fabric.flightLatency(0, 2), 1600u);
}

TEST(Chiplet, BridgeCountsOnlyCrossTraffic)
{
    FabricConfig config;
    config.kind = TopologyKind::kChiplet;
    config.numGpus = 4;
    ChipletTopology fabric(config);
    fabric.transfer(0, 0, 1, 1000);  // local
    fabric.transfer(0, 0, 2, 2000);  // crosses chiplet0's bridge
    for (const LinkStat &link : fabric.linkStats()) {
        if (link.name == "chiplet0.xbar.out") {
            EXPECT_EQ(link.bytes, 2000u);
        } else if (link.name == "chiplet1.xbar.out") {
            EXPECT_EQ(link.bytes, 0u);
        }
    }
}

/** Property sweep: transfer time is monotone in size for every pair. */
class TopologyPairs
    : public ::testing::TestWithParam<
          std::tuple<TopologyKind, std::pair<sim::GpuId, sim::GpuId>>>
{
};

TEST_P(TopologyPairs, MonotoneInSize)
{
    FabricConfig config;
    config.numGpus = 4;
    config.kind = std::get<0>(GetParam());
    const auto [src, dst] = std::get<1>(GetParam());
    sim::Cycle prev = 0;
    for (std::uint64_t bytes : {64ull, 4096ull, 65536ull}) {
        auto fabric = makeTopology(config);
        const sim::Cycle t = fabric->transfer(0, src, dst, bytes);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, TopologyPairs,
    ::testing::Combine(
        ::testing::ValuesIn(kAllTopologyKinds),
        ::testing::Values(std::make_pair(0, 1), std::make_pair(3, 0),
                          std::make_pair(sim::kHostId, 2),
                          std::make_pair(2, sim::kHostId))));

}  // namespace
}  // namespace grit::ic
