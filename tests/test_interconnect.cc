/** @file Unit tests for links and the multi-GPU fabric. */

#include <gtest/gtest.h>

#include "interconnect/fabric.h"
#include "interconnect/link.h"

namespace grit::ic {
namespace {

TEST(Link, TransferAddsSerializationAndLatency)
{
    Link link("l", 1.0, 100);  // 1 B/cy, 100-cycle latency
    // 50 bytes: 50 cycles serialization + 100 latency.
    EXPECT_EQ(link.transfer(0, 50), 150u);
    EXPECT_EQ(link.bytesMoved(), 50u);
    EXPECT_EQ(link.busyCycles(), 50u);
}

TEST(Link, TableIBandwidths)
{
    // 300 GB/s NVLink: a 4 KB page serializes in ceil(4096/300) = 14 cy.
    Link nvlink("nv", 300.0, 0);
    EXPECT_EQ(nvlink.transfer(0, 4096), 14u);
    // 32 GB/s PCIe: 4096/32 = 128 cy.
    Link pcie("pcie", 32.0, 0);
    EXPECT_EQ(pcie.transfer(0, 4096), 128u);
}

TEST(Fabric, GpuToGpuUsesNvlinkLatency)
{
    FabricConfig config;
    config.numGpus = 4;
    Fabric fabric(config);
    const sim::Cycle done = fabric.transfer(0, 0, 1, 4096);
    // 14 cycles serialization + 700 NVLink latency.
    EXPECT_EQ(done, 714u);
    EXPECT_EQ(fabric.flightLatency(0, 1), 700u);
}

TEST(Fabric, HostTransfersUsePcie)
{
    FabricConfig config;
    config.numGpus = 2;
    Fabric fabric(config);
    EXPECT_EQ(fabric.transfer(0, sim::kHostId, 0, 4096), 1128u);
    EXPECT_EQ(fabric.transfer(0, 0, sim::kHostId, 4096), 1128u);
    EXPECT_EQ(fabric.flightLatency(sim::kHostId, 1), 1000u);
    EXPECT_EQ(fabric.pcieBytes(), 8192u);
}

TEST(Fabric, MessagesAreLatencyOnly)
{
    FabricConfig config;
    config.numGpus = 2;
    Fabric fabric(config);
    // Control messages never queue behind bulk DMAs.
    fabric.transfer(0, 0, 1, 1 << 20);  // big DMA
    EXPECT_EQ(fabric.message(0, 0, 1), 700u);
    EXPECT_EQ(fabric.message(0, 0, sim::kHostId), 1000u);
    EXPECT_EQ(fabric.messages(), 2u);
}

TEST(Fabric, NvlinkByteAccounting)
{
    FabricConfig config;
    config.numGpus = 2;
    Fabric fabric(config);
    fabric.transfer(0, 0, 1, 1000);
    EXPECT_EQ(fabric.nvlinkBytes(), 1000u);  // egress side accounting
}

TEST(Fabric, ResetClearsOccupancy)
{
    FabricConfig config;
    config.numGpus = 2;
    Fabric fabric(config);
    fabric.transfer(0, 0, 1, 1 << 20);
    fabric.reset();
    EXPECT_EQ(fabric.nvlinkBytes(), 0u);
    EXPECT_EQ(fabric.transfer(0, 0, 1, 300), 701u);
}

/** Property sweep: transfer time is monotone in size for every pair. */
class FabricPairs
    : public ::testing::TestWithParam<std::pair<sim::GpuId, sim::GpuId>>
{
};

TEST_P(FabricPairs, MonotoneInSize)
{
    FabricConfig config;
    config.numGpus = 4;
    const auto [src, dst] = GetParam();
    sim::Cycle prev = 0;
    for (std::uint64_t bytes : {64ull, 4096ull, 65536ull}) {
        Fabric fabric(config);
        const sim::Cycle t = fabric.transfer(0, src, dst, bytes);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, FabricPairs,
    ::testing::Values(std::make_pair(0, 1), std::make_pair(3, 0),
                      std::make_pair(sim::kHostId, 2),
                      std::make_pair(2, sim::kHostId)));

}  // namespace
}  // namespace grit::ic
