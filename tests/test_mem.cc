/** @file Unit tests for page tables, TLBs, walk cache, data cache, DRAM
 *  manager, and access counters. */

#include <gtest/gtest.h>

#include "mem/access_counter.h"
#include "mem/data_cache.h"
#include "mem/dram_manager.h"
#include "mem/page_table.h"
#include "mem/page_walk_cache.h"
#include "mem/tlb.h"

namespace grit::mem {
namespace {

// ------------------------------------------------------------------ PageTable

TEST(PageTable, InstallAndLookup)
{
    PageTable pt;
    EXPECT_FALSE(pt.translates(5));
    pt.install(5, MappingKind::kLocal, 0, /*writable=*/true);
    EXPECT_TRUE(pt.translates(5));
    const PteRecord *rec = pt.find(5);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->kind, MappingKind::kLocal);
    EXPECT_EQ(rec->location, 0);
    EXPECT_TRUE(rec->pte.writable());
}

TEST(PageTable, RemoteMapping)
{
    PageTable pt;
    pt.install(9, MappingKind::kRemote, 3, /*writable=*/true);
    EXPECT_EQ(pt.find(9)->kind, MappingKind::kRemote);
    EXPECT_EQ(pt.find(9)->location, 3);
}

TEST(PageTable, InvalidateKeepsSchemeAnnotation)
{
    PageTable pt;
    pt.install(7, MappingKind::kLocal, 1, true);
    pt.setScheme(7, Scheme::kDuplication);
    pt.invalidate(7);
    EXPECT_FALSE(pt.translates(7));
    EXPECT_EQ(pt.scheme(7), Scheme::kDuplication);
}

TEST(PageTable, SchemeAnnotationBeforeMapping)
{
    PageTable pt;
    pt.setScheme(11, Scheme::kAccessCounter);
    EXPECT_FALSE(pt.translates(11));
    EXPECT_EQ(pt.scheme(11), Scheme::kAccessCounter);
    pt.setGroupBits(11, GroupBits::kPages8);
    EXPECT_EQ(pt.groupBits(11), GroupBits::kPages8);
}

TEST(PageTable, EraseRemovesEntry)
{
    PageTable pt;
    pt.install(3, MappingKind::kLocal, 0, true);
    pt.erase(3);
    EXPECT_EQ(pt.find(3), nullptr);
    EXPECT_EQ(pt.scheme(3), Scheme::kNone);
}

TEST(PageTable, ValidCountExcludesAnnotations)
{
    PageTable pt;
    pt.install(1, MappingKind::kLocal, 0, true);
    pt.install(2, MappingKind::kLocal, 0, true);
    pt.setScheme(3, Scheme::kOnTouch);  // annotation only
    pt.invalidate(2);
    EXPECT_EQ(pt.size(), 3u);
    EXPECT_EQ(pt.validCount(), 1u);
}

TEST(PageTable, ReadOnlyReplicaFlag)
{
    PageTable pt;
    pt.install(4, MappingKind::kLocal, 2, /*writable=*/false,
               /*read_only_replica=*/true);
    EXPECT_TRUE(pt.find(4)->readOnlyReplica);
    pt.invalidate(4);
    EXPECT_FALSE(pt.find(4)->readOnlyReplica);
}

// ------------------------------------------------------------------------ Tlb

TEST(Tlb, MissThenHit)
{
    Tlb tlb("t", 32, 32, 1);
    EXPECT_FALSE(tlb.lookup(10));
    tlb.insert(10);
    EXPECT_TRUE(tlb.lookup(10));
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LruEvictionWithinSet)
{
    Tlb tlb("t", 2, 2, 1);  // one set, two ways
    tlb.insert(1);
    tlb.insert(2);
    EXPECT_TRUE(tlb.lookup(1));  // make 2 the LRU
    tlb.insert(3);               // evicts 2
    EXPECT_TRUE(tlb.lookup(1));
    EXPECT_FALSE(tlb.lookup(2));
    EXPECT_TRUE(tlb.lookup(3));
}

TEST(Tlb, SetsIndexedByPageModulo)
{
    Tlb tlb("t", 4, 2, 1);  // two sets
    // Pages 0 and 2 map to set 0; 1 and 3 to set 1.
    tlb.insert(0);
    tlb.insert(2);
    tlb.insert(4);  // evicts within set 0 only
    EXPECT_TRUE(tlb.lookup(4));
    EXPECT_EQ(tlb.occupancy(), 2u);
}

TEST(Tlb, InvalidateSinglePage)
{
    Tlb tlb("t", 32, 32, 1);
    tlb.insert(5);
    tlb.insert(6);
    tlb.invalidate(5);
    EXPECT_FALSE(tlb.lookup(5));
    EXPECT_TRUE(tlb.lookup(6));
}

TEST(Tlb, FlushAllIsTotal)
{
    Tlb tlb("t", 32, 32, 1);
    for (sim::PageId p = 0; p < 20; ++p)
        tlb.insert(p);
    EXPECT_EQ(tlb.occupancy(), 20u);
    tlb.flushAll();
    EXPECT_EQ(tlb.occupancy(), 0u);
    EXPECT_FALSE(tlb.lookup(3));
    tlb.insert(3);
    EXPECT_TRUE(tlb.lookup(3));  // usable after flush
}

TEST(Tlb, DoubleInsertDoesNotDuplicate)
{
    Tlb tlb("t", 4, 4, 1);
    tlb.insert(9);
    tlb.insert(9);
    EXPECT_EQ(tlb.occupancy(), 1u);
}

/** Property sweep over Table I TLB geometries. */
class TlbGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(TlbGeometry, CapacityNeverExceeded)
{
    const auto [entries, ways] = GetParam();
    Tlb tlb("t", entries, ways, 1);
    for (sim::PageId p = 0; p < 4 * entries; ++p)
        tlb.insert(p);
    EXPECT_LE(tlb.occupancy(), entries);
}

INSTANTIATE_TEST_SUITE_P(
    TableIGeometries, TlbGeometry,
    ::testing::Values(std::make_tuple(32u, 32u),    // L1 TLB
                      std::make_tuple(512u, 16u),   // L2 TLB
                      std::make_tuple(64u, 4u),
                      std::make_tuple(16u, 1u)));

// -------------------------------------------------------------- PageWalkCache

TEST(PageWalkCache, ColdWalkTakesAllLevels)
{
    PageWalkCache pwc(128);
    EXPECT_EQ(pwc.walkAccesses(0x12345), PageWalkCache::kLevels);
}

TEST(PageWalkCache, FilledPrefixShortensWalk)
{
    PageWalkCache pwc(128);
    pwc.fill(0x12345);
    EXPECT_EQ(pwc.walkAccesses(0x12345), 1u);  // leaf access only
    // A page in the same 2 MB region shares the level-1 prefix.
    EXPECT_EQ(pwc.walkAccesses(0x12345 ^ 0x1), 1u);
}

TEST(PageWalkCache, DistantPageSharesOnlyUpperLevels)
{
    PageWalkCache pwc(128);
    pwc.fill(0);  // covers prefixes of page 0
    // Same 1 GB region, different 2 MB region: level-2 hit -> 2 accesses.
    EXPECT_EQ(pwc.walkAccesses(1 << 9), 2u);
    // Same 512 GB region, different 1 GB region: 3 accesses.
    EXPECT_EQ(pwc.walkAccesses(1 << 18), 3u);
    // Different top-level region: full walk.
    EXPECT_EQ(pwc.walkAccesses(std::uint64_t{1} << 27), 4u);
}

TEST(PageWalkCache, FlushRestoresFullWalks)
{
    PageWalkCache pwc(128);
    pwc.fill(42);
    pwc.flushAll();
    EXPECT_EQ(pwc.walkAccesses(42), PageWalkCache::kLevels);
}

TEST(PageWalkCache, RecordsHitsAndMisses)
{
    PageWalkCache pwc(128);
    pwc.recordWalk(4);
    pwc.recordWalk(1);
    EXPECT_EQ(pwc.hits(), 1u);
    EXPECT_EQ(pwc.misses(), 1u);
}

// ------------------------------------------------------------------ DataCache

TEST(DataCache, MissFillsThenHits)
{
    DataCache cache("c", 1024, 2, 64, 10);
    EXPECT_FALSE(cache.access(7));
    EXPECT_TRUE(cache.access(7));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(DataCache, LruEvictionWithinSet)
{
    DataCache cache("c", 2 * 64, 2, 64, 10);  // one set, two ways
    cache.access(1);
    cache.access(2);
    cache.access(1);  // 2 becomes LRU
    cache.access(3);  // evicts 2
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
}

TEST(DataCache, InvalidatePageRemovesItsLines)
{
    DataCache cache("c", 256 * 1024, 16, 64, 10);
    const unsigned lines_per_page = 64;
    cache.access(5 * lines_per_page + 3);
    cache.access(6 * lines_per_page + 3);
    cache.invalidatePage(5, lines_per_page);
    EXPECT_FALSE(cache.contains(5 * lines_per_page + 3));
    EXPECT_TRUE(cache.contains(6 * lines_per_page + 3));
}

TEST(DataCache, FlushAllClears)
{
    DataCache cache("c", 1024, 2, 64, 10);
    cache.access(1);
    cache.flushAll();
    EXPECT_FALSE(cache.contains(1));
    EXPECT_FALSE(cache.access(1));  // refill works
    EXPECT_TRUE(cache.contains(1));
}

// ---------------------------------------------------------------- DramManager

TEST(DramManager, UnlimitedCapacityNeverEvicts)
{
    DramManager dram(0);
    for (sim::PageId p = 0; p < 1000; ++p)
        EXPECT_FALSE(dram.insert(p, FrameKind::kOwned).has_value());
    EXPECT_EQ(dram.size(), 1000u);
    EXPECT_EQ(dram.evictions(), 0u);
}

TEST(DramManager, EvictsLruWhenFull)
{
    DramManager dram(2);
    dram.insert(1, FrameKind::kOwned);
    dram.insert(2, FrameKind::kOwned);
    dram.touch(1);  // 2 becomes LRU
    const auto victim = dram.insert(3, FrameKind::kOwned);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->page, 2u);
    EXPECT_TRUE(dram.resident(1));
    EXPECT_TRUE(dram.resident(3));
    EXPECT_EQ(dram.evictions(), 1u);
}

TEST(DramManager, VictimReportsFrameKind)
{
    DramManager dram(1);
    dram.insert(1, FrameKind::kReplica);
    const auto victim = dram.insert(2, FrameKind::kOwned);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->kind, FrameKind::kReplica);
}

TEST(DramManager, ReplicaCounting)
{
    DramManager dram(0);
    dram.insert(1, FrameKind::kReplica);
    dram.insert(2, FrameKind::kOwned);
    EXPECT_EQ(dram.replicaCount(), 1u);
    dram.setKind(1, FrameKind::kOwned);
    EXPECT_EQ(dram.replicaCount(), 0u);
    dram.setKind(2, FrameKind::kReplica);
    EXPECT_EQ(dram.replicaCount(), 1u);
    dram.erase(2);
    EXPECT_EQ(dram.replicaCount(), 0u);
}

TEST(DramManager, EraseFreesFrame)
{
    DramManager dram(1);
    dram.insert(1, FrameKind::kOwned);
    EXPECT_TRUE(dram.erase(1));
    EXPECT_FALSE(dram.erase(1));
    EXPECT_FALSE(dram.insert(2, FrameKind::kOwned).has_value());
}

TEST(DramManager, KindOfResidentPage)
{
    DramManager dram(0);
    dram.insert(9, FrameKind::kReplica);
    EXPECT_EQ(dram.kindOf(9), FrameKind::kReplica);
}

// --------------------------------------------------------- AccessCounterTable

TEST(AccessCounterTable, GroupsAre64KB)
{
    // 16 pages of 4 KB per group (Table I's 64 KB granularity).
    AccessCounterTable counters(16, 256);
    EXPECT_EQ(counters.groupOf(0), 0u);
    EXPECT_EQ(counters.groupOf(15), 0u);
    EXPECT_EQ(counters.groupOf(16), 1u);
    EXPECT_EQ(counters.groupFirstPage(2), 32u);
}

TEST(AccessCounterTable, TriggersAtThresholdAndResets)
{
    AccessCounterTable counters(16, 4);
    EXPECT_FALSE(counters.recordRemoteAccess(0));
    EXPECT_FALSE(counters.recordRemoteAccess(1));
    EXPECT_FALSE(counters.recordRemoteAccess(2));
    EXPECT_TRUE(counters.recordRemoteAccess(3));  // 4th access, same group
    EXPECT_EQ(counters.count(0), 0u);             // reset after trigger
    EXPECT_EQ(counters.triggers(), 1u);
}

TEST(AccessCounterTable, GroupsAreIndependent)
{
    AccessCounterTable counters(16, 4);
    counters.recordRemoteAccess(0);
    counters.recordRemoteAccess(16);
    EXPECT_EQ(counters.count(0), 1u);
    EXPECT_EQ(counters.count(16), 1u);
}

TEST(AccessCounterTable, ClearErasesGroup)
{
    AccessCounterTable counters(16, 4);
    counters.recordRemoteAccess(5);
    counters.clear(5);
    EXPECT_EQ(counters.count(5), 0u);
}

TEST(AccessCounterTable, DefaultThresholdIs256)
{
    AccessCounterTable counters(16, 256);
    for (int i = 0; i < 255; ++i)
        EXPECT_FALSE(counters.recordRemoteAccess(0));
    EXPECT_TRUE(counters.recordRemoteAccess(0));
}

}  // namespace
}  // namespace grit::mem
