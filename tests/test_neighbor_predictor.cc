/** @file Unit tests for Neighboring-Aware Prediction (paper Section V-D,
 *  Figure 15, Table V). */

#include <gtest/gtest.h>

#include "core/neighbor_predictor.h"

namespace grit::core {
namespace {

class NapTest : public ::testing::Test
{
  protected:
    /** Give pages [first, first+n) the scheme @p s. */
    void
    fill(sim::PageId first, unsigned n, mem::Scheme s)
    {
        for (unsigned i = 0; i < n; ++i)
            central.setScheme(first + i, s);
    }

    mem::PageTable central;
    NeighborPredictor nap{central};
};

TEST_F(NapTest, NoPromotionWithoutMajority)
{
    // 4 of 8 pages on duplication is not *more than half*.
    fill(0, 4, mem::Scheme::kDuplication);
    fill(4, 4, mem::Scheme::kOnTouch);
    const NapOutcome out =
        nap.onSchemeChange(0, mem::Scheme::kDuplication);
    EXPECT_EQ(out.groupPages, 1u);
    EXPECT_TRUE(out.adopted.empty());
    EXPECT_EQ(central.groupBits(0), mem::GroupBits::kPages1);
}

TEST_F(NapTest, MajorityPromotesEightPageGroup)
{
    // 5 of 8 pages already use duplication.
    fill(0, 5, mem::Scheme::kDuplication);
    fill(5, 3, mem::Scheme::kOnTouch);
    const NapOutcome out =
        nap.onSchemeChange(0, mem::Scheme::kDuplication);
    EXPECT_EQ(out.groupPages, 8u);
    EXPECT_EQ(out.adopted.size(), 3u);  // the three on-touch pages flip
    EXPECT_EQ(central.groupBits(0), mem::GroupBits::kPages8);
    for (sim::PageId p = 0; p < 8; ++p)
        EXPECT_EQ(central.scheme(p), mem::Scheme::kDuplication);
    // Non-base pages carry no group bits.
    EXPECT_EQ(central.groupBits(1), mem::GroupBits::kPages1);
}

TEST_F(NapTest, RecursivePromotionTo64Pages)
{
    // Seven sibling 8-groups already promoted on duplication; the
    // eighth group reaches majority now.
    for (unsigned g = 1; g < 8; ++g) {
        fill(g * 8, 8, mem::Scheme::kDuplication);
        central.setGroupBits(g * 8, mem::GroupBits::kPages8);
    }
    fill(0, 5, mem::Scheme::kDuplication);
    const NapOutcome out =
        nap.onSchemeChange(0, mem::Scheme::kDuplication);
    EXPECT_EQ(out.groupPages, 64u);
    EXPECT_EQ(central.groupBits(0), mem::GroupBits::kPages64);
    // Former sub-group bases lose their group bits.
    EXPECT_EQ(central.groupBits(8), mem::GroupBits::kPages1);
    for (sim::PageId p = 0; p < 64; ++p)
        EXPECT_EQ(central.scheme(p), mem::Scheme::kDuplication);
}

TEST_F(NapTest, PromotionTo512NeedsPromotedChildren)
{
    // All 512 pages share the scheme but no child group bits are set:
    // level-64 promotion requires promoted 8-groups, which exist only
    // around the changed page after the level-8 step.
    fill(0, 512, mem::Scheme::kAccessCounter);
    const NapOutcome out =
        nap.onSchemeChange(0, mem::Scheme::kAccessCounter);
    // Level 8 promotes (all agree); level 64 fails (children of the
    // 64-group are not promoted groups yet).
    EXPECT_EQ(out.groupPages, 8u);
}

TEST_F(NapTest, FullRecursivePromotionTo512)
{
    // All 64 8-group bases promoted, and all eight 64-group bases
    // promoted, except the block containing the changed page.
    fill(0, 512, mem::Scheme::kDuplication);
    for (unsigned g = 0; g < 64; ++g)
        central.setGroupBits(g * 8, mem::GroupBits::kPages8);
    for (unsigned b = 1; b < 8; ++b)
        central.setGroupBits(b * 64, mem::GroupBits::kPages64);
    central.setGroupBits(0, mem::GroupBits::kPages1);

    const NapOutcome out =
        nap.onSchemeChange(0, mem::Scheme::kDuplication);
    EXPECT_EQ(out.groupPages, 512u);
    EXPECT_EQ(central.groupBits(0), mem::GroupBits::kPages512);
    EXPECT_EQ(central.groupBits(64), mem::GroupBits::kPages1);
}

TEST_F(NapTest, EnclosingGroupDetection)
{
    fill(0, 8, mem::Scheme::kOnTouch);
    central.setGroupBits(0, mem::GroupBits::kPages8);
    EXPECT_EQ(nap.enclosingGroupPages(3), 8u);
    EXPECT_EQ(nap.enclosingGroupPages(9), 1u);

    central.setGroupBits(0, mem::GroupBits::kPages64);
    EXPECT_EQ(nap.enclosingGroupPages(63), 64u);
    EXPECT_EQ(nap.enclosingGroupPages(64), 1u);
}

TEST_F(NapTest, DivergenceDegrades64Into8Groups)
{
    // The paper's example: a 64-page group degrades into eight 8-page
    // groups; the sub-group containing the change dissolves to "00".
    fill(0, 64, mem::Scheme::kAccessCounter);
    central.setGroupBits(0, mem::GroupBits::kPages64);

    central.setScheme(20, mem::Scheme::kDuplication);  // divergent page
    const NapOutcome out =
        nap.onSchemeChange(20, mem::Scheme::kDuplication);
    EXPECT_TRUE(out.degraded);

    // The seven sibling sub-groups survive as 8-page groups.
    for (unsigned g = 0; g < 8; ++g) {
        const sim::PageId base = g * 8;
        if (g == 20 / 8) {
            EXPECT_EQ(central.groupBits(base), mem::GroupBits::kPages1);
        } else {
            EXPECT_EQ(central.groupBits(base), mem::GroupBits::kPages8);
        }
    }
    // No promotion for the lone duplication page.
    EXPECT_EQ(out.groupPages, 1u);
}

TEST_F(NapTest, DegradationOf512RecursesIntoContainingBlock)
{
    fill(0, 512, mem::Scheme::kAccessCounter);
    central.setGroupBits(0, mem::GroupBits::kPages512);

    central.setScheme(100, mem::Scheme::kDuplication);
    const NapOutcome out =
        nap.onSchemeChange(100, mem::Scheme::kDuplication);
    EXPECT_TRUE(out.degraded);
    // Page 100 lives in 64-block 1 (pages 64-127), 8-group 12
    // (pages 96-103).
    EXPECT_EQ(central.groupBits(0), mem::GroupBits::kPages64);
    EXPECT_EQ(central.groupBits(128), mem::GroupBits::kPages64);
    EXPECT_EQ(central.groupBits(448), mem::GroupBits::kPages64);
    // Inside the containing 64-block, sibling 8-groups survive — even
    // the one based at the block's first page — while the 8-group
    // containing page 100 (pages 96-103) dissolves completely.
    EXPECT_EQ(central.groupBits(64), mem::GroupBits::kPages8);
    EXPECT_EQ(central.groupBits(72), mem::GroupBits::kPages8);
    EXPECT_EQ(central.groupBits(96), mem::GroupBits::kPages1);
}

TEST_F(NapTest, AdoptedListExcludesAlreadyMatchingPages)
{
    fill(0, 8, mem::Scheme::kDuplication);
    const NapOutcome out =
        nap.onSchemeChange(2, mem::Scheme::kDuplication);
    EXPECT_EQ(out.groupPages, 8u);
    EXPECT_TRUE(out.adopted.empty());  // everyone already agreed
}

}  // namespace
}  // namespace grit::core
