/** @file Unit tests for the PA-Table and PA-Cache (paper Section V-C,
 *  Figure 12). */

#include <gtest/gtest.h>

#include "core/pa_cache.h"
#include "core/pa_table.h"

namespace grit::core {
namespace {

// -------------------------------------------------------------------- PaTable

TEST(PaTable, PutFindErase)
{
    PaTable table;
    EXPECT_EQ(table.find(5), nullptr);
    table.put(5, PaEntry{2, true});
    const PaEntry *entry = table.find(5);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->faultCounter, 2u);
    EXPECT_TRUE(entry->writeSeen);
    EXPECT_TRUE(table.erase(5));
    EXPECT_FALSE(table.erase(5));
    EXPECT_EQ(table.find(5), nullptr);
}

TEST(PaTable, FootprintIs48BitsPerEntry)
{
    PaTable table;
    for (sim::PageId p = 0; p < 100; ++p)
        table.put(p, PaEntry{});
    // Section V-F: 48 bits per entry.
    EXPECT_EQ(table.footprintBytes(), 100u * 48 / 8);
}

TEST(PaTable, PaperOverheadRatio)
{
    // 48 bits per 4 KB page = 0.15 % of the footprint (Section V-F).
    const double ratio = 48.0 / 8.0 / 4096.0;
    EXPECT_NEAR(ratio * 100.0, 0.15, 0.01);
}

TEST(PaTable, TracksReadsAndWrites)
{
    PaTable table;
    table.put(1, PaEntry{});
    table.find(1);
    table.find(2);
    EXPECT_EQ(table.writes(), 1u);
    EXPECT_EQ(table.reads(), 2u);
}

// -------------------------------------------------------------------- PaCache

TEST(PaCache, PaperGeometry)
{
    PaTable table;
    PaCache cache(table);
    EXPECT_EQ(cache.sets(), 16u);  // 64 entries, 4-way
    EXPECT_EQ(cache.ways(), 4u);
    // Section V-F: (41 + 2 + 1) bits x 64 entries = 352 bytes.
    EXPECT_EQ(cache.hardwareBytes(), 352u);
}

TEST(PaCache, FirstFaultRegistersInCache)
{
    PaTable table;
    PaCache cache(table);
    const PaAccessResult r = cache.recordFault(10, false, 4);
    EXPECT_FALSE(r.cacheHit);
    EXPECT_FALSE(r.tableHit);
    EXPECT_EQ(r.faultCount, 1u);
    EXPECT_FALSE(r.triggered);
    EXPECT_EQ(cache.occupancy(), 1u);
    // Fresh entries live in the cache, not the table (write-allocate).
    EXPECT_EQ(table.size(), 0u);
}

TEST(PaCache, RepeatFaultHitsAndCounts)
{
    PaTable table;
    PaCache cache(table);
    cache.recordFault(10, false, 4);
    const PaAccessResult r = cache.recordFault(10, false, 4);
    EXPECT_TRUE(r.cacheHit);
    EXPECT_EQ(r.faultCount, 2u);
}

TEST(PaCache, WriteBitIsSticky)
{
    PaTable table;
    PaCache cache(table);
    cache.recordFault(10, true, 8);
    const PaAccessResult r = cache.recordFault(10, false, 8);
    EXPECT_TRUE(r.writeSeen);  // stays set for the entry's lifetime
}

TEST(PaCache, TriggerDeletesFromCacheAndTable)
{
    PaTable table;
    PaCache cache(table);
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(cache.recordFault(10, false, 4).triggered);
    const PaAccessResult r = cache.recordFault(10, false, 4);
    EXPECT_TRUE(r.triggered);
    EXPECT_EQ(r.faultCount, 4u);
    EXPECT_EQ(cache.occupancy(), 0u);
    EXPECT_EQ(table.find(10), nullptr);
    // The next fault starts a fresh episode.
    EXPECT_EQ(cache.recordFault(10, false, 4).faultCount, 1u);
}

TEST(PaCache, EvictionWritesBackToTable)
{
    PaTable table;
    PaCache cache(table, /*entries=*/4, /*ways=*/1);  // 4 sets, direct
    // Two VPNs mapping to the same set (stride = sets).
    cache.recordFault(0, true, 8);
    cache.recordFault(0, true, 8);
    const PaAccessResult r = cache.recordFault(4, false, 8);  // same set
    EXPECT_TRUE(r.wroteBack);
    const PaEntry *spilled = table.find(0);
    ASSERT_NE(spilled, nullptr);
    EXPECT_EQ(spilled->faultCounter, 2u);
    EXPECT_TRUE(spilled->writeSeen);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(PaCache, WriteAllocateBringsTableEntryBack)
{
    PaTable table;
    PaCache cache(table, 4, 1);
    cache.recordFault(0, true, 8);
    cache.recordFault(4, false, 8);  // evicts VPN 0 to the table
    const PaAccessResult r = cache.recordFault(0, false, 8);
    EXPECT_FALSE(r.cacheHit);
    EXPECT_TRUE(r.tableHit);
    EXPECT_EQ(r.faultCount, 2u);   // resumed, not restarted
    EXPECT_TRUE(r.writeSeen);      // sticky bit survived the round trip
    EXPECT_EQ(table.find(0), nullptr);  // moved back into the cache
}

TEST(PaCache, IndexUsesLowVpnBits)
{
    PaTable table;
    PaCache cache(table);  // 16 sets
    // 17 VPNs with distinct low bits spread across sets: no eviction.
    for (sim::PageId vpn = 0; vpn < 16; ++vpn)
        cache.recordFault(vpn, false, 100);
    EXPECT_EQ(cache.occupancy(), 16u);
    EXPECT_EQ(cache.writebacks(), 0u);
}

TEST(PaCache, LruWithinSet)
{
    PaTable table;
    PaCache cache(table, /*entries=*/2, /*ways=*/2);  // one set
    cache.recordFault(0, false, 100);
    cache.recordFault(1, false, 100);
    cache.recordFault(0, false, 100);  // 1 becomes LRU
    cache.recordFault(2, false, 100);  // evicts 1
    EXPECT_NE(table.find(1), nullptr);
    EXPECT_EQ(table.find(0), nullptr);
}

TEST(PaCache, ClearResets)
{
    PaTable table;
    PaCache cache(table);
    cache.recordFault(3, false, 8);
    cache.clear();
    EXPECT_EQ(cache.occupancy(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
}

/** Property sweep: triggers always fire at exactly the threshold. */
class PaCacheThreshold : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PaCacheThreshold, FiresAtThreshold)
{
    const std::uint32_t threshold = GetParam();
    PaTable table;
    PaCache cache(table);
    for (std::uint32_t i = 1; i < threshold; ++i)
        EXPECT_FALSE(cache.recordFault(42, false, threshold).triggered);
    EXPECT_TRUE(cache.recordFault(42, false, threshold).triggered);
}

INSTANTIATE_TEST_SUITE_P(Figure21Thresholds, PaCacheThreshold,
                         ::testing::Values(2u, 4u, 8u, 16u));

}  // namespace
}  // namespace grit::core
