/** @file Multi-page-size substrate tests (docs/PAGESIZE.md): geometry
 *  validation, the huge-key namespace, region-aware DRAM accounting,
 *  RegionTracker bookkeeping, promote/splinter churn at the driver
 *  level (audited each round), and end-to-end dynamic-mode runs whose
 *  promote/splinter ledger must reconcile exactly. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/invariant_auditor.h"
#include "mem/dram_manager.h"
#include "mem/page_geometry.h"
#include "mem/region_tracker.h"
#include "policy/on_touch.h"
#include "test_util.h"
#include "workload/apps.h"

namespace grit {
namespace {

/** True when any validate() violation's context mentions @p where. */
bool
mentions(const std::vector<sim::SimError> &violations,
         const std::string &where)
{
    for (const sim::SimError &v : violations)
        if (v.context.find(where) != std::string::npos)
            return true;
    return false;
}

std::uint64_t
counterOf(const harness::RunResult &result, const std::string &name)
{
    for (const auto &[key, value] : result.counters)
        if (key == name)
            return value;
    return 0;
}

bool
hasCounter(const harness::RunResult &result, const std::string &name)
{
    for (const auto &[key, value] : result.counters)
        if (key == name)
            return true;
    return false;
}

// ------------------------------------------------------------- PageGeometry

TEST(PageGeometry, DefaultIsValid4kWithoutHugePages)
{
    const mem::PageGeometry geo{};
    EXPECT_EQ(geo.baseSize, sim::kPageSize4K);
    EXPECT_FALSE(geo.hugePages);
    EXPECT_TRUE(geo.validate("geometry").empty());
}

TEST(PageGeometry, RegionMath)
{
    mem::PageGeometry geo;
    geo.hugePages = true;
    geo.hugeSize = 32 * 1024;  // 8 base pages
    EXPECT_EQ(geo.basePagesPerHuge(), 8u);
    EXPECT_EQ(geo.regionOf(0), 0u);
    EXPECT_EQ(geo.regionOf(7), 0u);
    EXPECT_EQ(geo.regionOf(8), 1u);
    EXPECT_EQ(geo.regionFirstPage(3), 24u);
    EXPECT_EQ(geo.linesPerBase(), sim::kPageSize4K / sim::kLineSize);
}

TEST(PageGeometry, RejectsDegenerateSizes)
{
    mem::PageGeometry geo;
    geo.baseSize = 0;
    EXPECT_TRUE(mentions(geo.validate("geometry"), "geometry.baseSize"));

    geo.baseSize = 12 * 1024;  // not a power of two
    EXPECT_TRUE(mentions(geo.validate("geometry"), "geometry.baseSize"));

    geo = mem::PageGeometry{};
    geo.hugePages = true;
    geo.hugeSize = geo.baseSize;  // must exceed the base granule
    EXPECT_TRUE(mentions(geo.validate("geometry"), "geometry.hugeSize"));

    geo.hugeSize = 24 * 1024;  // not a power of two
    EXPECT_TRUE(mentions(geo.validate("geometry"), "geometry.hugeSize"));

    geo = mem::PageGeometry{};
    geo.hugePages = true;
    geo.promoteFaultThreshold = 0;
    EXPECT_TRUE(mentions(geo.validate("geometry"),
                         "geometry.promoteFaultThreshold"));

    // Huge-page knobs are ignored while the mode is off.
    geo = mem::PageGeometry{};
    geo.hugeSize = 0;
    geo.promoteFaultThreshold = 0;
    EXPECT_TRUE(geo.validate("geometry").empty());
}

TEST(PageGeometry, SystemConfigValidateReportsGeometryErrors)
{
    harness::SystemConfig config =
        harness::makeConfig(harness::PolicyKind::kOnTouch, 4);
    config.geometry.baseSize = 0;
    EXPECT_TRUE(mentions(config.validate(), "geometry.baseSize"));
}

TEST(PageGeometry, HugeKeyNamespaceRoundTrips)
{
    const sim::PageId region = 123456;
    const sim::PageId key = mem::hugeKey(region);
    EXPECT_TRUE(mem::isHugeKey(key));
    EXPECT_EQ(mem::hugeKeyRegion(key), region);
    // Base page ids never collide with the huge-key namespace.
    EXPECT_FALSE(mem::isHugeKey(region));
    EXPECT_FALSE(mem::isHugeKey(0));
    EXPECT_NE(key, region);
}

// -------------------------------------------------- DramManager regions

TEST(DramRegions, TracksOwnedPagesPerRegion)
{
    mem::DramManager dram(100);
    dram.configureRegions(4);
    EXPECT_EQ(dram.ownedInRegion(0), 0u);
    dram.insert(0, mem::FrameKind::kOwned);
    dram.insert(1, mem::FrameKind::kOwned);
    dram.insert(5, mem::FrameKind::kOwned);  // region 1
    EXPECT_EQ(dram.ownedInRegion(0), 2u);
    EXPECT_EQ(dram.ownedInRegion(1), 1u);
    dram.erase(1);
    EXPECT_EQ(dram.ownedInRegion(0), 1u);
    // Replicas are not owned frames.
    dram.insert(2, mem::FrameKind::kReplica);
    EXPECT_EQ(dram.ownedInRegion(0), 1u);
    dram.setKind(2, mem::FrameKind::kOwned);
    EXPECT_EQ(dram.ownedInRegion(0), 2u);
}

TEST(DramRegions, PinnedRegionsAreSkippedByEviction)
{
    mem::DramManager dram(4);  // capacity: exactly one region
    dram.configureRegions(4);
    for (sim::PageId p = 0; p < 4; ++p)
        dram.insert(p, mem::FrameKind::kOwned);
    dram.pinRegion(0);
    EXPECT_TRUE(dram.regionPinned(0));

    // The next insert must evict, but every resident page sits in the
    // pinned region: the fallback victim is still produced (the caller
    // splinters), so capacity can never deadlock.
    const auto eviction = dram.insert(100, mem::FrameKind::kOwned);
    ASSERT_TRUE(eviction.has_value());
    EXPECT_LT(eviction->page, 4u);

    dram.unpinRegion(0);
    EXPECT_FALSE(dram.regionPinned(0));
}

TEST(DramRegions, UnpinnedVictimPreferredOverPinned)
{
    mem::DramManager dram(8);
    dram.configureRegions(4);
    for (sim::PageId p = 0; p < 8; ++p)
        dram.insert(p, mem::FrameKind::kOwned);
    // Region 0 (pages 0-3) is oldest in LRU but pinned; the victim
    // must come from region 1 instead.
    dram.pinRegion(0);
    const auto eviction = dram.insert(100, mem::FrameKind::kOwned);
    ASSERT_TRUE(eviction.has_value());
    EXPECT_GE(eviction->page, 4u);
}

// ---------------------------------------------------------- RegionTracker

TEST(RegionTracker, DisabledWithoutHugePages)
{
    const mem::RegionTracker tracker{mem::PageGeometry{}};
    EXPECT_FALSE(tracker.enabled());
}

TEST(RegionTracker, LedgerAndHeat)
{
    mem::PageGeometry geo;
    geo.hugePages = true;
    geo.hugeSize = 16 * 1024;  // 4 pages
    mem::RegionTracker tracker(geo);
    ASSERT_TRUE(tracker.enabled());
    EXPECT_EQ(tracker.regionOf(7), 1u);

    EXPECT_EQ(tracker.noteRegionFault(0, 5), 1u);
    EXPECT_EQ(tracker.noteRegionFault(0, 5), 2u);
    EXPECT_EQ(tracker.noteRegionFault(1, 5), 1u);  // per-GPU heat
    EXPECT_EQ(tracker.regionFaults(0, 5), 2u);

    tracker.markPromoted(5, 0);
    EXPECT_TRUE(tracker.promoted(5));
    EXPECT_EQ(tracker.holder(5), 0);
    EXPECT_EQ(tracker.promotedCount(), 1u);
    EXPECT_EQ(tracker.promotedPages(), 4u);

    tracker.markSplintered(5, mem::SplinterReason::kWriteSharing);
    EXPECT_FALSE(tracker.promoted(5));
    EXPECT_EQ(tracker.holder(5), sim::kNoGpu);
    EXPECT_EQ(tracker.promotedCount(), 0u);
    EXPECT_EQ(tracker.splinters(), 1u);
    EXPECT_EQ(tracker.splintersBy(mem::SplinterReason::kWriteSharing), 1u);
    EXPECT_EQ(tracker.splintersBy(mem::SplinterReason::kEviction), 0u);
    // Splintering drops the heat: re-promotion needs fresh evidence.
    EXPECT_EQ(tracker.regionFaults(0, 5), 0u);
    EXPECT_EQ(tracker.regionFaults(1, 5), 0u);
}

// --------------------------------------------- driver promote/splinter

/** 4-page regions, low threshold: promotable with a handful of faults. */
mem::PageGeometry
smallDynamicGeometry()
{
    mem::PageGeometry geo;
    geo.hugePages = true;
    geo.hugeSize = 16 * 1024;  // 4 base pages per region
    geo.promoteFaultThreshold = 3;
    return geo;
}

/** Expect a clean cross-layer audit; prints violations on failure. */
void
expectCleanAudit(test::MiniSystem &sys)
{
    sim::InvariantAuditor auditor(*sys.driver);
    const std::vector<sim::SimError> violations = auditor.audit();
    EXPECT_TRUE(violations.empty());
    for (const sim::SimError &v : violations)
        ADD_FAILURE() << v.str();
}

TEST(PromoteSplinter, FullyResidentHotRegionPromotes)
{
    test::MiniSystem sys(2, 0, {}, smallDynamicGeometry());
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    sim::Cycle now = 0;
    for (sim::PageId p = 0; p < 4; ++p)
        sys.driver->handleFault(0, p, true, false, now += 10000);

    EXPECT_TRUE(sys.driver->regionTracker().promoted(0));
    EXPECT_EQ(sys.driver->regionTracker().holder(0), 0);
    EXPECT_TRUE(sys.gpu(0).hugeMapped(0));
    EXPECT_EQ(sys.gpu(0).hugeMappingCount(), 1u);
    EXPECT_TRUE(sys.gpu(0).dram().regionPinned(0));
    expectCleanAudit(sys);
}

TEST(PromoteSplinter, PartialResidencyNeverPromotes)
{
    test::MiniSystem sys(2, 0, {}, smallDynamicGeometry());
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    sim::Cycle now = 0;
    // Heat crosses the threshold but page 3 never becomes resident.
    for (int round = 0; round < 3; ++round)
        for (sim::PageId p = 0; p < 3; ++p)
            sys.driver->handleFault(0, p, true, false, now += 10000);
    EXPECT_FALSE(sys.driver->regionTracker().promoted(0));
    EXPECT_FALSE(sys.gpu(0).hugeMapped(0));
    expectCleanAudit(sys);
}

TEST(PromoteSplinter, RemoteWriterSplintersAndChurnStaysCoherent)
{
    test::MiniSystem sys(2, 0, {}, smallDynamicGeometry());
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    const mem::RegionTracker &tracker = sys.driver->regionTracker();
    sim::Cycle now = 0;

    // Promote -> steal from the other GPU (write sharing splinters the
    // region, then migration rebuilds residency there) -> re-promote.
    // Every round must leave all three layers agreeing.
    sim::GpuId holder = 0;
    for (int round = 0; round < 4; ++round) {
        for (sim::PageId p = 0; p < 4; ++p)
            sys.driver->handleFault(holder, p, true, false, now += 10000);
        ASSERT_TRUE(tracker.promoted(0)) << "round " << round;
        EXPECT_EQ(tracker.holder(0), holder);
        EXPECT_TRUE(sys.gpu(static_cast<unsigned>(holder)).hugeMapped(0));
        expectCleanAudit(sys);

        const sim::GpuId thief = holder == 0 ? 1 : 0;
        sys.driver->handleFault(thief, 0, true, false, now += 10000);
        EXPECT_FALSE(tracker.promoted(0));
        EXPECT_FALSE(sys.gpu(static_cast<unsigned>(holder)).hugeMapped(0));
        EXPECT_FALSE(sys.gpu(0).dram().regionPinned(0));
        EXPECT_FALSE(sys.gpu(1).dram().regionPinned(0));
        expectCleanAudit(sys);
        holder = thief;
    }

    EXPECT_EQ(tracker.promotions(), 4u);
    EXPECT_EQ(tracker.splinters(), 4u);
    EXPECT_EQ(tracker.splintersBy(mem::SplinterReason::kWriteSharing), 4u);
}

TEST(PromoteSplinter, SplinterAllPromotedDropsEveryRegion)
{
    test::MiniSystem sys(2, 0, {}, smallDynamicGeometry());
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    sim::Cycle now = 0;
    for (sim::PageId p = 0; p < 4; ++p)
        sys.driver->handleFault(0, p, true, false, now += 10000);
    for (sim::PageId p = 8; p < 12; ++p)  // region 2
        sys.driver->handleFault(1, p, true, false, now += 10000);
    ASSERT_EQ(sys.driver->regionTracker().promotedCount(), 2u);

    EXPECT_EQ(sys.driver->splinterAllPromoted(now + 1000), 2u);
    EXPECT_EQ(sys.driver->regionTracker().promotedCount(), 0u);
    EXPECT_EQ(sys.driver->regionTracker().splintersBy(
                  mem::SplinterReason::kChaos),
              2u);
    EXPECT_EQ(sys.gpu(0).hugeMappingCount(), 0u);
    EXPECT_EQ(sys.gpu(1).hugeMappingCount(), 0u);
    expectCleanAudit(sys);
}

// ------------------------------------------------------------ end to end

/** Dynamic-mode config: fully resident so promotions can stick. */
harness::SystemConfig
dynamicConfig(harness::PolicyKind policy)
{
    harness::SystemConfig config = harness::makeConfig(policy, 4);
    config.geometry.hugePages = true;
    config.geometry.hugeSize = 32 * 1024;
    config.memoryFraction = 0.0;
    config.pageSizeStats = true;
    config.audit = true;
    return config;
}

workload::WorkloadParams
streamParams()
{
    workload::WorkloadParams params;
    params.footprintDivisor = 32;
    params.intensity = 1.0;
    return params;
}

TEST(PageSizeEndToEnd, LedgerReconcilesUnderAudit)
{
    const harness::RunResult result = harness::runApp(
        workload::AppId::kSt, dynamicConfig(harness::PolicyKind::kOnTouch),
        streamParams());
    EXPECT_TRUE(result.auditFindings.empty());
    EXPECT_EQ(counterOf(result, "audit.violations"), 0u);
    EXPECT_GT(counterOf(result, "promote.regions"), 0u);
    // The ISSUE's reconciliation identity: promotions minus splinters
    // is exactly the number of live huge mappings.
    EXPECT_EQ(counterOf(result, "promote.regions") -
                  counterOf(result, "splinter.regions"),
              counterOf(result, "promote.live_regions"));
}

TEST(PageSizeEndToEnd, PromotionReducesPageWalksWhenResident)
{
    harness::SystemConfig fixed =
        harness::makeConfig(harness::PolicyKind::kOnTouch, 4);
    fixed.memoryFraction = 0.0;
    fixed.pageSizeStats = true;
    const harness::RunResult base =
        harness::runApp(workload::AppId::kSt, fixed, streamParams());
    const harness::RunResult dyn = harness::runApp(
        workload::AppId::kSt, dynamicConfig(harness::PolicyKind::kOnTouch),
        streamParams());
    EXPECT_LT(counterOf(dyn, "gmmu.walks"), counterOf(base, "gmmu.walks"));
    EXPECT_LT(counterOf(dyn, "tlb.l2_misses"),
              counterOf(base, "tlb.l2_misses"));
}

TEST(PageSizeEndToEnd, DynamicModeIsDeterministic)
{
    const harness::SystemConfig config =
        dynamicConfig(harness::PolicyKind::kGrit);
    const workload::Workload w =
        workload::makeWorkload(workload::AppId::kSt, streamParams());
    const harness::RunResult a = harness::runWorkload(config, w);
    const harness::RunResult b = harness::runWorkload(config, w);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.counters, b.counters);
}

TEST(PageSizeEndToEnd, FeatureOffKeepsCounterSetUnchanged)
{
    harness::SystemConfig config =
        harness::makeConfig(harness::PolicyKind::kOnTouch, 4);
    ASSERT_FALSE(config.geometry.hugePages);
    const harness::RunResult result = harness::runApp(
        workload::AppId::kGemm, config, streamParams());
    // The dynamic-mode counters must not leak into classic documents
    // (the byte-identical goldens depend on the counter set).
    EXPECT_FALSE(hasCounter(result, "promote.regions"));
    EXPECT_FALSE(hasCounter(result, "splinter.regions"));
    EXPECT_FALSE(hasCounter(result, "tlb.l1_hits"));
    EXPECT_FALSE(hasCounter(result, "pwc.misses"));
}

TEST(PageSizeEndToEnd, PromoteStormChaosSplintersAndStaysClean)
{
    harness::SystemConfig config =
        dynamicConfig(harness::PolicyKind::kOnTouch);
    config.chaos = sim::ChaosSpec::parse("promostorm:period=20000");
    const harness::RunResult result = harness::runApp(
        workload::AppId::kSt, config, streamParams());
    EXPECT_TRUE(result.auditFindings.empty());
    EXPECT_GT(counterOf(result, "splinter.chaos"), 0u);
    EXPECT_EQ(counterOf(result, "chaos.promote_splinters"),
              counterOf(result, "splinter.chaos"));
    EXPECT_EQ(counterOf(result, "promote.regions") -
                  counterOf(result, "splinter.regions"),
              counterOf(result, "promote.live_regions"));
}

TEST(PageSizeEndToEnd, MalformedPromostormSpecRejected)
{
    EXPECT_THROW(sim::ChaosSpec::parse("promostorm:period=0"),
                 sim::SimException);
    EXPECT_THROW(sim::ChaosSpec::parse("promostorm:bogus=1"),
                 sim::SimException);
}

}  // namespace
}  // namespace grit
