/** @file Unit tests for the uniform placement policies and the scheme
 *  decision matrix (Table III). */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/scheme_decision.h"
#include "policy/access_counter_policy.h"
#include "policy/duplication.h"
#include "policy/first_touch.h"
#include "policy/ideal.h"
#include "policy/on_touch.h"

namespace grit::policy {
namespace {

FaultInfo
faultAt(sim::GpuId gpu, sim::PageId page, bool write, bool cold)
{
    FaultInfo info;
    info.gpu = gpu;
    info.page = page;
    info.write = write;
    info.coldTouch = cold;
    info.owner = cold ? sim::kHostId : 0;
    return info;
}

TEST(OnTouchPolicy, AlwaysMigrates)
{
    OnTouchPolicy policy;
    EXPECT_EQ(policy.onFault(faultAt(1, 5, false, false), 0),
              FaultAction::kMigrate);
    EXPECT_EQ(policy.onFault(faultAt(1, 5, true, true), 0),
              FaultAction::kMigrate);
    EXPECT_EQ(policy.schemeOf(5), mem::Scheme::kOnTouch);
    EXPECT_FALSE(policy.countsRemote(5));
    EXPECT_STREQ(policy.name(), "on-touch");
}

TEST(AccessCounterPolicy, MapsRemoteAndCounts)
{
    AccessCounterPolicy policy;
    EXPECT_EQ(policy.onFault(faultAt(1, 5, false, false), 0),
              FaultAction::kMapRemote);
    EXPECT_TRUE(policy.countsRemote(5));
    EXPECT_EQ(policy.schemeOf(5), mem::Scheme::kAccessCounter);
}

TEST(DuplicationPolicy, AlwaysDuplicates)
{
    DuplicationPolicy policy;
    EXPECT_EQ(policy.onFault(faultAt(1, 5, false, false), 0),
              FaultAction::kDuplicate);
    EXPECT_EQ(policy.onFault(faultAt(1, 5, true, false), 0),
              FaultAction::kDuplicate);  // driver turns write into collapse
    EXPECT_EQ(policy.schemeOf(5), mem::Scheme::kDuplication);
}

TEST(FirstTouchPolicy, PinsOnColdThenPeerAccess)
{
    FirstTouchPolicy policy;
    EXPECT_EQ(policy.onFault(faultAt(0, 5, false, true), 0),
              FaultAction::kMigrate);
    EXPECT_EQ(policy.onFault(faultAt(1, 5, false, false), 0),
              FaultAction::kMapRemote);
    EXPECT_FALSE(policy.countsRemote(5));  // pinned forever
}

TEST(IdealPolicy, ColdPaysThenFree)
{
    IdealPolicy policy;
    EXPECT_EQ(policy.onFault(faultAt(0, 5, false, true), 0),
              FaultAction::kMigrate);
    EXPECT_EQ(policy.onFault(faultAt(1, 5, true, false), 0),
              FaultAction::kIdealLocal);
}

TEST(PolicyDefaults, NoOverheadNoAccessHook)
{
    OnTouchPolicy policy;
    EXPECT_EQ(policy.faultOverhead(faultAt(0, 1, false, false), 0), 0u);
    EXPECT_EQ(policy.onAccess(0, 1, false, false, 0), 0u);
}

// ------------------------------------------------------- Scheme decision

TEST(SchemeDecision, Figure13Rule)
{
    using core::decideScheme;
    EXPECT_EQ(decideScheme(false), mem::Scheme::kDuplication);
    EXPECT_EQ(decideScheme(true), mem::Scheme::kAccessCounter);
}

TEST(SchemeDecision, TableIIIPreferences)
{
    using core::preferredSchemes;
    using core::SharingClass;
    using mem::Scheme;

    // Read row: private/PC-shared prefer OT (duplication acceptable);
    // all-shared prefers duplication.
    auto read_private =
        preferredSchemes(SharingClass::kPrivate, false);
    EXPECT_EQ(read_private.front(), Scheme::kOnTouch);
    EXPECT_NE(std::find(read_private.begin(), read_private.end(),
                        Scheme::kDuplication),
              read_private.end());
    EXPECT_EQ(preferredSchemes(SharingClass::kAllShared, false),
              std::vector<Scheme>{Scheme::kDuplication});

    // Read-write row: private -> OT; PC-shared -> OT/AC;
    // all-shared -> AC.
    EXPECT_EQ(preferredSchemes(SharingClass::kPrivate, true),
              std::vector<Scheme>{Scheme::kOnTouch});
    auto rw_pc = preferredSchemes(SharingClass::kPcShared, true);
    EXPECT_EQ(rw_pc.front(), Scheme::kOnTouch);
    EXPECT_NE(std::find(rw_pc.begin(), rw_pc.end(),
                        Scheme::kAccessCounter),
              rw_pc.end());
    EXPECT_EQ(preferredSchemes(SharingClass::kAllShared, true),
              std::vector<Scheme>{Scheme::kAccessCounter});
}

TEST(SchemeDecision, SharingClassNames)
{
    using core::SharingClass;
    EXPECT_STREQ(core::sharingClassName(SharingClass::kPrivate),
                 "private");
    EXPECT_STREQ(core::sharingClassName(SharingClass::kPcShared),
                 "pc-shared");
    EXPECT_STREQ(core::sharingClassName(SharingClass::kAllShared),
                 "all-shared");
}

}  // namespace
}  // namespace grit::policy
