/** @file Unit tests for the PTE bit layout (paper Fig. 14, Tables IV/V). */

#include <gtest/gtest.h>

#include "mem/pte.h"

namespace grit::mem {
namespace {

TEST(Pte, DefaultIsAllZero)
{
    Pte pte;
    EXPECT_EQ(pte.raw(), 0u);
    EXPECT_FALSE(pte.valid());
    EXPECT_EQ(pte.scheme(), Scheme::kNone);
    EXPECT_EQ(pte.groupBits(), GroupBits::kPages1);
}

TEST(Pte, ValidBitIsBitZero)
{
    Pte pte;
    pte.setValid(true);
    EXPECT_EQ(pte.raw(), 1u);
    pte.setValid(false);
    EXPECT_EQ(pte.raw(), 0u);
}

TEST(Pte, SchemeBitsOccupyBits9And10)
{
    // Table IV: 01 = on-touch, 10 = access counter, 11 = duplication.
    Pte pte;
    pte.setScheme(Scheme::kOnTouch);
    EXPECT_EQ(pte.raw(), std::uint64_t{1} << 9);
    pte.setScheme(Scheme::kAccessCounter);
    EXPECT_EQ(pte.raw(), std::uint64_t{1} << 10);
    pte.setScheme(Scheme::kDuplication);
    EXPECT_EQ(pte.raw(), (std::uint64_t{0x3} << 9));
    pte.setScheme(Scheme::kNone);
    EXPECT_EQ(pte.raw(), 0u);
}

TEST(Pte, GroupBitsOccupyBits52And53)
{
    Pte pte;
    pte.setGroupBits(GroupBits::kPages8);
    EXPECT_EQ(pte.raw(), std::uint64_t{1} << 52);
    pte.setGroupBits(GroupBits::kPages512);
    EXPECT_EQ(pte.raw(), std::uint64_t{0x3} << 52);
}

TEST(Pte, PfnOccupiesBits12To51)
{
    Pte pte;
    const std::uint64_t pfn = (std::uint64_t{1} << 40) - 1;  // max PFN
    pte.setPfn(pfn);
    EXPECT_EQ(pte.pfn(), pfn);
    EXPECT_EQ(pte.raw(), pfn << 12);
    pte.setPfn(0x1234);
    EXPECT_EQ(pte.pfn(), 0x1234u);
}

TEST(Pte, FieldsAreIndependent)
{
    Pte pte;
    pte.setValid(true);
    pte.setWritable(true);
    pte.setScheme(Scheme::kDuplication);
    pte.setPfn(0xABCDE);
    pte.setGroupBits(GroupBits::kPages64);
    pte.setDirty(true);
    pte.setAccessed(true);

    EXPECT_TRUE(pte.valid());
    EXPECT_TRUE(pte.writable());
    EXPECT_EQ(pte.scheme(), Scheme::kDuplication);
    EXPECT_EQ(pte.pfn(), 0xABCDEu);
    EXPECT_EQ(pte.groupBits(), GroupBits::kPages64);
    EXPECT_TRUE(pte.dirty());
    EXPECT_TRUE(pte.accessed());

    // Clearing one field leaves the others intact.
    pte.setScheme(Scheme::kNone);
    EXPECT_TRUE(pte.valid());
    EXPECT_EQ(pte.pfn(), 0xABCDEu);
    EXPECT_EQ(pte.groupBits(), GroupBits::kPages64);
}

TEST(Pte, RawRoundTrip)
{
    Pte a;
    a.setValid(true);
    a.setScheme(Scheme::kAccessCounter);
    a.setPfn(77);
    Pte b(a.raw());
    EXPECT_EQ(a, b);
    EXPECT_EQ(b.scheme(), Scheme::kAccessCounter);
}

TEST(GroupBits, TableVMapping)
{
    EXPECT_EQ(groupPages(GroupBits::kPages1), 1u);
    EXPECT_EQ(groupPages(GroupBits::kPages8), 8u);
    EXPECT_EQ(groupPages(GroupBits::kPages64), 64u);
    EXPECT_EQ(groupPages(GroupBits::kPages512), 512u);

    EXPECT_EQ(groupBitsFor(1), GroupBits::kPages1);
    EXPECT_EQ(groupBitsFor(8), GroupBits::kPages8);
    EXPECT_EQ(groupBitsFor(64), GroupBits::kPages64);
    EXPECT_EQ(groupBitsFor(512), GroupBits::kPages512);
}

TEST(SchemeName, PrintableNames)
{
    EXPECT_STREQ(schemeName(Scheme::kNone), "none");
    EXPECT_STREQ(schemeName(Scheme::kOnTouch), "on-touch");
    EXPECT_STREQ(schemeName(Scheme::kAccessCounter), "access-counter");
    EXPECT_STREQ(schemeName(Scheme::kDuplication), "duplication");
}

TEST(GroupBase, PaperFormula)
{
    // VPN_base = VPN - (VPN % GroupSize), Section V-D.
    EXPECT_EQ(groupBase(0, 8), 0u);
    EXPECT_EQ(groupBase(7, 8), 0u);
    EXPECT_EQ(groupBase(8, 8), 8u);
    EXPECT_EQ(groupBase(515, 512), 512u);
    EXPECT_EQ(groupBase(1000, 64), 960u);
}

/** Property sweep: scheme/group round-trips over every combination. */
class PteRoundTrip
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(PteRoundTrip, SchemeAndGroupSurviveTogether)
{
    const auto [scheme_raw, group_raw] = GetParam();
    Pte pte;
    pte.setValid(true);
    pte.setPfn(0xFFFFFFFFFFull);
    pte.setScheme(static_cast<Scheme>(scheme_raw));
    pte.setGroupBits(static_cast<GroupBits>(group_raw));
    EXPECT_EQ(pte.scheme(), static_cast<Scheme>(scheme_raw));
    EXPECT_EQ(pte.groupBits(), static_cast<GroupBits>(group_raw));
    EXPECT_EQ(pte.pfn(), 0xFFFFFFFFFFull);
    EXPECT_TRUE(pte.valid());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PteRoundTrip,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u),
                       ::testing::Values(0u, 1u, 2u, 3u)));

}  // namespace
}  // namespace grit::mem
