/** @file Record-framing suite: CRC32C correctness, frame/unframe round
 *  trips, legacy/corrupt classification, torn-tail scanning, the
 *  quarantine sidecar, and the seeded store-bitflip injector. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/record_frame.h"
#include "simcore/sim_error.h"

namespace grit::harness {
namespace {

/** Self-deleting temp file path. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".quarantine").c_str());
    }
    ~TempPath()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".quarantine").c_str());
    }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spill(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

// ---- CRC32C ----------------------------------------------------------

TEST(Crc32c, MatchesCheckValue)
{
    // The canonical CRC32C check value (RFC 3720 appendix).
    EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32c, EmptyInputIsZero)
{
    EXPECT_EQ(crc32c(""), 0u);
}

TEST(Crc32c, SeedChainsIncrementally)
{
    const std::string whole = "the quick brown fox jumps";
    for (std::size_t split = 0; split <= whole.size(); ++split) {
        const std::string_view head(whole.data(), split);
        const std::string_view tail(whole.data() + split,
                                    whole.size() - split);
        EXPECT_EQ(crc32c(tail, crc32c(head)), crc32c(whole));
    }
}

TEST(Crc32c, SensitiveToEveryByte)
{
    std::string data = "{\"fingerprint\":\"abc123\",\"cycles\":42}";
    const std::uint32_t clean = crc32c(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
        std::string mutated = data;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x80);
        EXPECT_NE(crc32c(mutated), clean) << "byte " << i;
    }
}

// ---- frame / unframe round trips -------------------------------------

TEST(RecordFrame, RoundTripsPayload)
{
    const std::string payload = "{\"k\":\"v\",\"n\":17}";
    const std::string line = frameRecord(payload);
    EXPECT_EQ(line.substr(0, kFrameMagic.size()), kFrameMagic);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    const UnframedRecord record = unframeRecord(line);
    EXPECT_EQ(record.kind, RecordKind::kFramed);
    EXPECT_EQ(record.payload, payload);
}

TEST(RecordFrame, RoundTripsEmptyAndLargePayloads)
{
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{4096},
          std::size_t{1} << 16}) {
        const std::string payload(n, 'x');
        const UnframedRecord record =
            unframeRecord(frameRecord(payload));
        EXPECT_EQ(record.kind, RecordKind::kFramed);
        EXPECT_EQ(record.payload, payload);
    }
}

TEST(RecordFrame, ClassifiesLegacyJsonLines)
{
    const UnframedRecord record = unframeRecord("{\"legacy\":true}");
    EXPECT_EQ(record.kind, RecordKind::kLegacy);
    EXPECT_EQ(record.payload, "{\"legacy\":true}");
}

TEST(RecordFrame, ClassifiesGarbageAsCorrupt)
{
    for (const std::string_view line :
         {std::string_view(""), std::string_view("hello"),
          std::string_view("GF1"), std::string_view("GF1 xyz"),
          std::string_view("GF1 0000000g 00000000 "),
          std::string_view("GF1 00000001 00000000")}) {
        const UnframedRecord record = unframeRecord(line);
        EXPECT_EQ(record.kind, RecordKind::kCorrupt) << line;
        EXPECT_FALSE(record.reason.empty()) << line;
    }
}

TEST(RecordFrame, DetectsLengthMismatch)
{
    std::string line = frameRecord("abcdef");
    line += "tail";  // payload longer than the declared length
    EXPECT_EQ(unframeRecord(line).kind, RecordKind::kCorrupt);
}

TEST(RecordFrame, AnySingleBitflipIsNeverValid)
{
    // The tentpole guarantee: no single flipped high bit anywhere in
    // a framed line yields a *valid* frame with a different payload.
    const std::string payload = "{\"row\":\"gemm\",\"cycles\":123456}";
    const std::string line = frameRecord(payload);
    for (std::size_t i = 0; i < line.size(); ++i) {
        std::string mutated = line;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x80);
        const UnframedRecord record = unframeRecord(mutated);
        if (record.kind == RecordKind::kFramed)
            EXPECT_EQ(record.payload, payload) << "byte " << i;
        else
            EXPECT_EQ(record.kind, RecordKind::kCorrupt) << "byte " << i;
    }
}

// ---- RecordReader ----------------------------------------------------

TEST(RecordReader, YieldsTerminatedLinesOnly)
{
    TempPath file("record_reader.txt");
    spill(file.str(), "one\ntwo\nthree");  // torn third line

    RecordReader reader(file.str());
    ASSERT_TRUE(reader.isOpen());
    std::string line;
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line, "one");
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line, "two");
    EXPECT_FALSE(reader.next(line));
    EXPECT_TRUE(reader.tornTail());
    EXPECT_EQ(reader.terminatedBytes(), 8u);  // "one\ntwo\n"
}

TEST(RecordReader, CleanFileHasNoTornTail)
{
    TempPath file("record_reader_clean.txt");
    spill(file.str(), "one\ntwo\n");

    RecordReader reader(file.str());
    std::string line;
    while (reader.next(line)) {
    }
    EXPECT_FALSE(reader.tornTail());
    EXPECT_EQ(reader.terminatedBytes(), 8u);
}

TEST(RecordReader, MissingFileReportsNotOpen)
{
    RecordReader reader(std::string(::testing::TempDir()) +
                        "no_such_record_file");
    EXPECT_FALSE(reader.isOpen());
}

// ---- QuarantineSidecar -----------------------------------------------

TEST(QuarantineSidecar, PreservesRawLines)
{
    TempPath file("quarantine_primary.jsonl");
    {
        QuarantineSidecar sidecar(file.str());
        EXPECT_EQ(sidecar.count(), 0u);
        sidecar.add("damaged line A");
        sidecar.add("damaged line B");
        EXPECT_EQ(sidecar.count(), 2u);
    }
    EXPECT_EQ(slurp(file.str() + ".quarantine"),
              "damaged line A\ndamaged line B\n");
}

TEST(QuarantineSidecar, RescrubReplacesInsteadOfAccumulating)
{
    // The same corrupt lines re-quarantine on every restart (they stay
    // in the primary until compaction), so a fresh sidecar instance
    // must replace the file, not append to it — otherwise the sidecar
    // grows without bound across restarts.
    TempPath file("quarantine_rescrub.jsonl");
    {
        QuarantineSidecar first(file.str());
        first.add("damaged line A");
        first.add("damaged line B");
    }
    {
        QuarantineSidecar second(file.str());
        second.add("damaged line A");
        second.add("damaged line B");
    }
    EXPECT_EQ(slurp(file.str() + ".quarantine"),
              "damaged line A\ndamaged line B\n");

    // A scrub that quarantines nothing leaves the sidecar untouched.
    QuarantineSidecar idle(file.str());
    EXPECT_EQ(slurp(file.str() + ".quarantine"),
              "damaged line A\ndamaged line B\n");
}

TEST(QuarantineSidecar, NoFileUntilFirstAdd)
{
    TempPath file("quarantine_lazy.jsonl");
    QuarantineSidecar sidecar(file.str());
    std::ifstream probe(sidecar.path());
    EXPECT_FALSE(probe.is_open());
}

// ---- injectBitflips --------------------------------------------------

TEST(InjectBitflips, DeterministicAndSparesHeaderAndNewlines)
{
    const std::string image = "{\"schema\":\"header\"}\n" +
                              frameRecord("{\"a\":1}") + "\n" +
                              frameRecord("{\"b\":2}") + "\n";
    TempPath fileA("bitflip_a.jsonl");
    TempPath fileB("bitflip_b.jsonl");
    spill(fileA.str(), image);
    spill(fileB.str(), image);

    const CorruptionReport a = injectBitflips(fileA.str(), 42, 5);
    const CorruptionReport b = injectBitflips(fileB.str(), 42, 5);
    EXPECT_EQ(a.bytesFlipped, 5u);
    EXPECT_EQ(a.damagedLines, b.damagedLines);
    EXPECT_EQ(slurp(fileA.str()), slurp(fileB.str()));

    const std::string damaged = slurp(fileA.str());
    ASSERT_EQ(damaged.size(), image.size());
    // Header line and every newline byte are untouched; exactly five
    // other bytes differ.
    const std::size_t headerEnd = image.find('\n');
    std::size_t flipped = 0;
    for (std::size_t i = 0; i < image.size(); ++i) {
        if (damaged[i] == image[i])
            continue;
        ++flipped;
        EXPECT_GT(i, headerEnd);
        EXPECT_NE(image[i], '\n');
        EXPECT_NE(damaged[i], '\n');
    }
    EXPECT_EQ(flipped, 5u);
    for (const std::uint64_t line : a.damagedLines) {
        EXPECT_GE(line, 2u);
        EXPECT_LE(line, 3u);
    }
}

TEST(InjectBitflips, DifferentSeedsDamageDifferently)
{
    const std::string image =
        "{\"schema\":\"header\"}\n" +
        frameRecord(std::string(256, 'p')) + "\n";
    TempPath fileA("bitflip_seed_a.jsonl");
    TempPath fileB("bitflip_seed_b.jsonl");
    spill(fileA.str(), image);
    spill(fileB.str(), image);
    injectBitflips(fileA.str(), 1, 4);
    injectBitflips(fileB.str(), 2, 4);
    EXPECT_NE(slurp(fileA.str()), slurp(fileB.str()));
}

TEST(InjectBitflips, DamagedFrameFailsValidation)
{
    const std::string payload = "{\"fingerprint\":\"deadbeef\"}";
    const std::string image =
        "{\"schema\":\"header\"}\n" + frameRecord(payload) + "\n";
    TempPath file("bitflip_invalid.jsonl");
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        spill(file.str(), image);
        injectBitflips(file.str(), seed, 1);
        std::ifstream in(file.str());
        std::string header, line;
        ASSERT_TRUE(std::getline(in, header));
        ASSERT_TRUE(std::getline(in, line));
        const UnframedRecord record = unframeRecord(line);
        // A flip inside the frame must never verify as the original
        // payload; almost always it is plain corrupt.
        if (record.kind == RecordKind::kFramed)
            EXPECT_EQ(record.payload, payload) << "seed " << seed;
        else
            EXPECT_NE(record.kind, RecordKind::kLegacy)
                << "seed " << seed;
    }
}

TEST(InjectBitflips, RefusesFileWithNoEligibleBytes)
{
    TempPath file("bitflip_header_only.jsonl");
    spill(file.str(), "{\"schema\":\"header\"}\n");
    EXPECT_THROW(injectBitflips(file.str(), 7, 1), sim::SimException);
    EXPECT_THROW(injectBitflips(std::string(::testing::TempDir()) +
                                    "no_such_store",
                                7, 1),
                 sim::SimException);
}

}  // namespace
}  // namespace grit::harness
