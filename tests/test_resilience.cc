/** @file Resilient-sweep suite: run-journal round trips, crash-safe
 *  resume bit-identity, watchdog deadlines and event budgets, hung-cell
 *  quarantine with partial-result salvage, cooperative cancellation,
 *  and the byte-budgeted LRU trace cache. */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.h"
#include "harness/experiment_engine.h"
#include "harness/run_journal.h"
#include "harness/simulator.h"
#include "simcore/sim_error.h"
#include "stats/json_value.h"
#include "stats/json_writer.h"
#include "workload/apps.h"
#include "workload/trace_cache.h"

namespace grit::harness {
namespace {

/** Small fast workload parameters. */
workload::WorkloadParams
fastParams()
{
    workload::WorkloadParams params;
    params.footprintDivisor = 64;
    params.intensity = 0.25;
    return params;
}

/** A 2-app x 2-config plan small enough for every test to sweep. */
RunPlan
smallPlan()
{
    const std::vector<LabeledConfig> configs = {
        {"on-touch", makeConfig(PolicyKind::kOnTouch, 4)},
        {"grit", makeConfig(PolicyKind::kGrit, 4)},
    };
    return RunPlan::matrix({workload::AppId::kGemm, workload::AppId::kSt},
                           configs, fastParams());
}

/** Full field-wise RunResult comparison, including the new fields. */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.localFaults, b.localFaults);
    EXPECT_EQ(a.protectionFaults, b.protectionFaults);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.peakReplicas, b.peakReplicas);
    EXPECT_EQ(a.schemeAccesses, b.schemeAccesses);
    for (unsigned k = 0; k < stats::kLatencyKinds; ++k) {
        const auto kind = static_cast<stats::LatencyKind>(k);
        EXPECT_EQ(a.breakdown.get(kind), b.breakdown.get(kind));
    }
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.auditFindings, b.auditFindings);
    EXPECT_EQ(a.partial, b.partial);
    ASSERT_EQ(a.error.has_value(), b.error.has_value());
    if (a.error.has_value()) {
        EXPECT_EQ(a.error->str(), b.error->str());
    }
    ASSERT_EQ(a.timeline.has_value(), b.timeline.has_value());
    if (a.timeline.has_value()) {
        EXPECT_EQ(a.timeline->intervalCycles(),
                  b.timeline->intervalCycles());
        EXPECT_EQ(a.timeline->keys(), b.timeline->keys());
        ASSERT_EQ(a.timeline->intervals(), b.timeline->intervals());
        for (std::size_t i = 0; i < a.timeline->intervals(); ++i)
            for (unsigned k = 0; k < a.timeline->keys(); ++k)
                EXPECT_EQ(a.timeline->get(i, k), b.timeline->get(i, k))
                    << "interval " << i << " key " << k;
    }
}

void
expectSameMatrix(const ResultMatrix &a, const ResultMatrix &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (const auto &[row, runs] : a) {
        ASSERT_TRUE(b.count(row)) << row;
        ASSERT_EQ(runs.size(), b.at(row).size()) << row;
        for (const auto &[label, result] : runs) {
            SCOPED_TRACE(row + "/" + label);
            ASSERT_TRUE(b.at(row).count(label));
            expectSameResult(result, b.at(row).at(label));
        }
    }
}

/** RAII temp file path deleted at scope exit. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".quarantine").c_str());
    }
    ~TempPath()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".quarantine").c_str());
    }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

// ----------------------------------------------------------- fingerprints

TEST(RunFingerprint, DigestIgnoresResilienceKnobsOnly)
{
    SystemConfig base = makeConfig(PolicyKind::kGrit, 4);
    const std::uint64_t digest = configDigest(base);
    EXPECT_EQ(digest, configDigest(base));  // deterministic

    // The watchdog/cancel knobs must NOT perturb the digest: resuming
    // with a different --deadline still matches journaled fingerprints.
    SystemConfig tweaked = base;
    tweaked.wallDeadlineSec = 12.5;
    tweaked.eventBudget = 99999;
    static std::atomic<int> flag{0};
    tweaked.cancelFlag = &flag;
    EXPECT_EQ(digest, configDigest(tweaked));

    // Everything else must.
    SystemConfig policy = makeConfig(PolicyKind::kOnTouch, 4);
    EXPECT_NE(digest, configDigest(policy));
    SystemConfig gpus = makeConfig(PolicyKind::kGrit, 8);
    EXPECT_NE(digest, configDigest(gpus));
    SystemConfig chaos = base;
    chaos.chaos = sim::ChaosSpec::parse("hang:at=100");
    EXPECT_NE(digest, configDigest(chaos));
}

TEST(RunFingerprint, CoversWorkloadIdentityAndParams)
{
    const RunPlan plan = smallPlan();
    const auto &cells = plan.cells();
    std::vector<std::string> prints;
    for (const RunCell &cell : cells) {
        const std::string fp = runFingerprint(cell);
        EXPECT_EQ(fp.size(), 16u);
        EXPECT_EQ(fp, runFingerprint(cell));  // stable
        for (const std::string &other : prints)
            EXPECT_NE(fp, other);  // unique across the plan
        prints.push_back(fp);
    }

    RunCell tweaked = cells[0];
    tweaked.params.intensity = 0.5;
    EXPECT_NE(runFingerprint(tweaked), prints[0]);
}

// ------------------------------------------------------- JSON round trips

TEST(RunJournalFormat, RunResultRoundTripsLosslessly)
{
    // A real run with timeline enabled exercises every serialized field.
    SystemConfig config = makeConfig(PolicyKind::kGrit, 4);
    config.timeline = true;
    config.timelineIntervalCycles = 512;
    RunPlan plan;
    plan.addCell("GEMM", "grit", config, workload::AppId::kGemm,
                 fastParams());
    ExperimentEngine engine;
    RunResult result =
        engine.run(plan).at("GEMM").at("grit");
    ASSERT_TRUE(result.timeline.has_value());
    result.partial = true;
    result.error.emplace(sim::ErrorCode::kDeadline, "budget exhausted",
                         "workload GEMM");

    std::ostringstream os;
    stats::JsonWriter w(os);
    writeRunResultJson(w, result);
    const RunResult back =
        runResultFromJson(stats::JsonValue::parse(os.str()));
    expectSameResult(result, back);
}

TEST(RunJournalFormat, EntryLineRoundTripsOkAndFailed)
{
    JournalEntry ok;
    ok.fingerprint = "00deadbeef001234";
    ok.row = "GEMM";
    ok.label = "grit";
    ok.status = "ok";
    ok.attempts = 1;
    ok.hasResult = true;
    ok.result.cycles = 42;
    ok.result.counters = {{"uvm.faults", 7}};

    const JournalEntry backOk = journalEntryFromLine(journalLine(ok));
    EXPECT_EQ(backOk.fingerprint, ok.fingerprint);
    EXPECT_EQ(backOk.status, "ok");
    EXPECT_TRUE(backOk.hasResult);
    EXPECT_EQ(backOk.result.cycles, 42u);
    EXPECT_EQ(backOk.result.counters, ok.result.counters);

    JournalEntry failed = ok;
    failed.status = "failed";
    failed.attempts = 3;
    failed.hasResult = false;
    failed.result = RunResult{};
    failed.error.emplace(sim::ErrorCode::kDeadline, "hung", "ctx");

    const JournalEntry backFail =
        journalEntryFromLine(journalLine(failed));
    EXPECT_EQ(backFail.status, "failed");
    EXPECT_EQ(backFail.attempts, 3u);
    EXPECT_FALSE(backFail.hasResult);
    ASSERT_TRUE(backFail.error.has_value());
    EXPECT_EQ(backFail.error->code, sim::ErrorCode::kDeadline);
    EXPECT_EQ(backFail.error->str(), failed.error->str());
}

TEST(RunJournalFormat, RejectsMalformedLines)
{
    EXPECT_THROW(journalEntryFromLine("{\"truncated\":"),
                 sim::SimException);
    // "ok" status without a result payload is corrupt.
    EXPECT_THROW(
        journalEntryFromLine(
            "{\"fingerprint\":\"ab\",\"row\":\"r\",\"label\":\"l\","
            "\"status\":\"ok\",\"attempts\":1}"),
        sim::SimException);
    try {
        journalEntryFromLine("[1,2,3]");
        FAIL() << "expected SimException";
    } catch (const sim::SimException &e) {
        EXPECT_EQ(e.code(), sim::ErrorCode::kJournal);
    }
}

// ----------------------------------------------------------- journal file

TEST(RunJournalFile, AppendReopenResumeAndTornTail)
{
    TempPath path("grit_journal_test.jsonl");
    JournalEntry entry;
    entry.fingerprint = "0123456789abcdef";
    entry.row = "ST";
    entry.label = "on-touch";
    entry.status = "ok";
    entry.hasResult = true;
    entry.result.cycles = 1234;

    {
        RunJournal journal;
        journal.open(path.str(), "test_resilience", /*resume=*/false);
        ASSERT_TRUE(journal.isOpen());
        EXPECT_EQ(journal.size(), 0u);
        journal.append(entry);
        EXPECT_EQ(journal.size(), 1u);
        ASSERT_NE(journal.find(entry.fingerprint), nullptr);
        EXPECT_EQ(journal.find("ffffffffffffffff"), nullptr);
    }

    // Simulate a crash mid-append: a torn final line must be ignored.
    {
        std::ofstream torn(path.str(), std::ios::app);
        torn << "{\"fingerprint\":\"fedcba98";
    }

    {
        RunJournal journal;
        journal.open(path.str(), "test_resilience", /*resume=*/true);
        EXPECT_EQ(journal.size(), 1u);
        const JournalEntry *found = journal.find(entry.fingerprint);
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(found->result.cycles, 1234u);
    }

    // A different generator must be rejected: fingerprints are only
    // comparable within one binary's plan.
    RunJournal wrong;
    EXPECT_THROW(wrong.open(path.str(), "other_bench", /*resume=*/true),
                 sim::SimException);

    // Opening without resume truncates.
    RunJournal fresh;
    fresh.open(path.str(), "test_resilience", /*resume=*/false);
    EXPECT_EQ(fresh.size(), 0u);
}

TEST(RunJournalFile, ConcurrentAppendsFromManyThreads)
{
    // Parallel sweep workers journal through one shared RunJournal;
    // every line must land intact (no interleaved bytes) and every
    // record must survive a resume.
    TempPath path("grit_journal_threads.jsonl");
    constexpr unsigned kThreads = 8;
    constexpr unsigned kPerThread = 50;
    {
        RunJournal journal;
        journal.open(path.str(), "test_resilience", /*resume=*/false);
        std::vector<std::thread> writers;
        for (unsigned t = 0; t < kThreads; ++t)
            writers.emplace_back([&journal, t] {
                for (unsigned i = 0; i < kPerThread; ++i) {
                    JournalEntry entry;
                    std::ostringstream fp;
                    fp << std::hex << std::setw(8) << std::setfill('0')
                       << t << std::setw(8) << i;
                    entry.fingerprint = fp.str();
                    entry.row = "GEMM";
                    entry.label = "w" + std::to_string(t);
                    entry.status = "ok";
                    entry.hasResult = true;
                    entry.result.cycles = t * 1000ull + i;
                    journal.append(entry);
                }
            });
        for (std::thread &w : writers)
            w.join();
        EXPECT_EQ(journal.size(), kThreads * kPerThread);
    }

    RunJournal reloaded;
    reloaded.open(path.str(), "test_resilience", /*resume=*/true);
    ASSERT_EQ(reloaded.size(), kThreads * kPerThread);
    for (unsigned t = 0; t < kThreads; ++t)
        for (unsigned i = 0; i < kPerThread; ++i) {
            std::ostringstream fp;
            fp << std::hex << std::setw(8) << std::setfill('0') << t
               << std::setw(8) << i;
            const JournalEntry *found = reloaded.find(fp.str());
            ASSERT_NE(found, nullptr) << fp.str();
            EXPECT_EQ(found->result.cycles, t * 1000ull + i);
        }
}

TEST(RunJournalFile, TwoWritersOnePathInterleaveAtLineGranularity)
{
    // Two journal handles on the same file — the multi-process analogue
    // of a resumed sweep racing a straggler. Appends go through
    // append-mode streams, so lines interleave whole, never torn, and
    // a torn tail left by a third (crashed) writer is still tolerated.
    TempPath path("grit_journal_two_writers.jsonl");
    RunJournal first;
    first.open(path.str(), "test_resilience", /*resume=*/false);
    RunJournal second;
    second.open(path.str(), "test_resilience", /*resume=*/true);

    constexpr unsigned kPerWriter = 100;
    auto writeVia = [](RunJournal &journal, const std::string &prefix) {
        for (unsigned i = 0; i < kPerWriter; ++i) {
            JournalEntry entry;
            std::ostringstream fp;
            fp << prefix << std::hex << std::setw(8)
               << std::setfill('0') << i;
            entry.fingerprint = fp.str();
            entry.row = "BFS";
            entry.label = prefix;
            entry.status = "ok";
            entry.hasResult = true;
            entry.result.cycles = i + 1;
            journal.append(entry);
        }
    };
    std::thread a([&] { writeVia(first, "aaaaaaaa"); });
    std::thread b([&] { writeVia(second, "bbbbbbbb"); });
    a.join();
    b.join();

    {
        std::ofstream torn(path.str(), std::ios::app);
        torn << "{\"fingerprint\":\"cccccccc";
    }

    RunJournal reloaded;
    reloaded.open(path.str(), "test_resilience", /*resume=*/true);
    EXPECT_EQ(reloaded.size(), 2 * kPerWriter);
    for (unsigned i = 0; i < kPerWriter; ++i) {
        std::ostringstream a_fp, b_fp;
        a_fp << "aaaaaaaa" << std::hex << std::setw(8)
             << std::setfill('0') << i;
        b_fp << "bbbbbbbb" << std::hex << std::setw(8)
             << std::setfill('0') << i;
        ASSERT_NE(reloaded.find(a_fp.str()), nullptr) << a_fp.str();
        ASSERT_NE(reloaded.find(b_fp.str()), nullptr) << b_fp.str();
    }
}

TEST(RunJournalFile, ResumesMixedLegacyAndFramedFiles)
{
    // A journal written partly before record framing existed (bare
    // JSON entry lines) and partly after must resume transparently.
    TempPath path("grit_journal_mixed.jsonl");
    JournalEntry legacy;
    legacy.fingerprint = "1111111111111111";
    legacy.row = "GEMM";
    legacy.label = "grit";
    legacy.status = "ok";
    legacy.hasResult = true;
    legacy.result.cycles = 11;
    JournalEntry framed = legacy;
    framed.fingerprint = "2222222222222222";
    framed.result.cycles = 22;
    {
        std::ofstream out(path.str(), std::ios::binary);
        out << "{\"schema\":\"grit-run-journal\",\"version\":2,"
               "\"generator\":\"test_resilience\"}\n"
            << journalLine(legacy) << "\n"
            << frameRecord(journalLine(framed)) << "\n";
    }
    {
        RunJournal journal;
        journal.open(path.str(), "test_resilience", /*resume=*/true);
        ASSERT_EQ(journal.size(), 2u);
        EXPECT_EQ(journal.scrubStats().valid, 2u);
        EXPECT_EQ(journal.scrubStats().quarantined, 0u);
        EXPECT_EQ(journal.find("1111111111111111")->result.cycles, 11u);
        EXPECT_EQ(journal.find("2222222222222222")->result.cycles, 22u);
        // New appends land framed behind the legacy records.
        JournalEntry fresh = legacy;
        fresh.fingerprint = "3333333333333333";
        fresh.result.cycles = 33;
        journal.append(fresh);
    }
    RunJournal reloaded;
    reloaded.open(path.str(), "test_resilience", /*resume=*/true);
    EXPECT_EQ(reloaded.size(), 3u);
    EXPECT_EQ(reloaded.find("3333333333333333")->result.cycles, 33u);
}

TEST(RunJournalFile, MidFileCorruptionIsQuarantinedNotTruncated)
{
    TempPath path("grit_journal_corrupt.jsonl");
    auto makeEntry = [](const std::string &fp, std::uint64_t cycles) {
        JournalEntry entry;
        entry.fingerprint = fp;
        entry.row = "ST";
        entry.label = "grit";
        entry.status = "ok";
        entry.hasResult = true;
        entry.result.cycles = cycles;
        return entry;
    };
    {
        RunJournal journal;
        journal.open(path.str(), "test_resilience", /*resume=*/false);
        journal.append(makeEntry("aaaaaaaaaaaaaaaa", 1));
        journal.append(makeEntry("bbbbbbbbbbbbbbbb", 2));
        journal.append(makeEntry("cccccccccccccccc", 3));
    }
    // Flip one byte inside the SECOND entry's frame (file line 3).
    {
        std::ifstream in(path.str(), std::ios::binary);
        std::vector<std::string> lines;
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
        in.close();
        ASSERT_EQ(lines.size(), 4u);
        lines[2][40] = static_cast<char>(lines[2][40] ^ 0x80);
        std::ofstream out(path.str(),
                          std::ios::binary | std::ios::trunc);
        for (const std::string &l : lines)
            out << l << "\n";
    }
    RunJournal journal;
    journal.open(path.str(), "test_resilience", /*resume=*/true);
    // The damaged record is skipped; the record AFTER it survives —
    // scrub-and-quarantine, not truncate-at-first-bad-byte.
    EXPECT_EQ(journal.size(), 2u);
    EXPECT_NE(journal.find("aaaaaaaaaaaaaaaa"), nullptr);
    EXPECT_EQ(journal.find("bbbbbbbbbbbbbbbb"), nullptr);
    EXPECT_NE(journal.find("cccccccccccccccc"), nullptr);
    EXPECT_EQ(journal.scrubStats().scanned, 3u);
    EXPECT_EQ(journal.scrubStats().valid, 2u);
    EXPECT_EQ(journal.scrubStats().quarantined, 1u);

    // The raw damaged line is preserved for post-mortems.
    std::ifstream sidecar(path.str() + ".quarantine");
    ASSERT_TRUE(sidecar.is_open());
    std::string preserved;
    EXPECT_TRUE(std::getline(sidecar, preserved));
}

TEST(RunJournalFile, TornTailIsTruncatedBeforeAppendsResume)
{
    TempPath path("grit_journal_torn_append.jsonl");
    JournalEntry entry;
    entry.fingerprint = "aaaaaaaaaaaaaaaa";
    entry.row = "BFS";
    entry.label = "grit";
    entry.status = "ok";
    entry.hasResult = true;
    entry.result.cycles = 7;
    {
        RunJournal journal;
        journal.open(path.str(), "test_resilience", /*resume=*/false);
        journal.append(entry);
    }
    std::uintmax_t intactBytes = 0;
    {
        std::ifstream in(path.str(), std::ios::ate | std::ios::binary);
        intactBytes = static_cast<std::uintmax_t>(in.tellg());
    }
    {
        std::ofstream torn(path.str(), std::ios::app | std::ios::binary);
        torn << "GF1 00000040 0000";  // crash mid-frame-header
    }
    {
        RunJournal journal;
        journal.open(path.str(), "test_resilience", /*resume=*/true);
        EXPECT_EQ(journal.size(), 1u);
        EXPECT_EQ(journal.scrubStats().truncated, 1u);
        // The torn bytes are gone from disk BEFORE the append stream
        // attaches, so this append starts on a clean line boundary.
        JournalEntry second = entry;
        second.fingerprint = "bbbbbbbbbbbbbbbb";
        journal.append(second);
    }
    std::uintmax_t finalBytes = 0;
    {
        std::ifstream in(path.str(), std::ios::ate | std::ios::binary);
        finalBytes = static_cast<std::uintmax_t>(in.tellg());
    }
    EXPECT_GT(finalBytes, intactBytes);

    RunJournal reloaded;
    reloaded.open(path.str(), "test_resilience", /*resume=*/true);
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded.scrubStats().quarantined, 0u);
    EXPECT_EQ(reloaded.scrubStats().truncated, 0u);
    EXPECT_NE(reloaded.find("bbbbbbbbbbbbbbbb"), nullptr);
}

// --------------------------------------------------------- resume merges

TEST(ResilientSweep, FullJournalReplayIsBitIdentical)
{
    const RunPlan plan = smallPlan();
    ExperimentEngine reference;
    const ResultMatrix expected = reference.run(plan);

    TempPath path("grit_resume_full.jsonl");
    RunJournal journal;
    journal.open(path.str(), "test_resilience", /*resume=*/false);
    ResilientOptions options;
    options.journal = &journal;

    ExperimentEngine first;
    const SweepResult sweep = first.runResilient(plan, options);
    EXPECT_TRUE(sweep.complete());
    EXPECT_EQ(sweep.executed, plan.size());
    EXPECT_EQ(sweep.reused, 0u);
    expectSameMatrix(expected, sweep.matrix);

    // A second engine resuming from the journal re-simulates nothing
    // and still merges to the bit-identical matrix.
    RunJournal resumed;
    resumed.open(path.str(), "test_resilience", /*resume=*/true);
    ResilientOptions resumeOptions;
    resumeOptions.journal = &resumed;
    ExperimentEngine second;
    const SweepResult replay = second.runResilient(plan, resumeOptions);
    EXPECT_TRUE(replay.complete());
    EXPECT_EQ(replay.executed, 0u);
    EXPECT_EQ(replay.reused, plan.size());
    expectSameMatrix(expected, replay.matrix);
}

TEST(ResilientSweep, PartialJournalResumesOnlyMissingCells)
{
    const RunPlan plan = smallPlan();
    ExperimentEngine reference;
    const ResultMatrix expected = reference.run(plan);

    // Journal only half the sweep — the on-disk state a kill -9 leaves.
    TempPath path("grit_resume_partial.jsonl");
    {
        RunPlan half;
        for (std::size_t i = 0; i < plan.size(); i += 2) {
            const RunCell &cell = plan.cells()[i];
            half.addCell(cell.row, cell.label, cell.config, cell.app,
                         cell.params);
        }
        RunJournal journal;
        journal.open(path.str(), "test_resilience", /*resume=*/false);
        ResilientOptions options;
        options.journal = &journal;
        ExperimentEngine engine;
        ASSERT_TRUE(engine.runResilient(half, options).complete());
    }

    RunJournal journal;
    journal.open(path.str(), "test_resilience", /*resume=*/true);
    ResilientOptions options;
    options.journal = &journal;
    ExperimentEngine engine;
    const SweepResult sweep = engine.runResilient(plan, options);
    EXPECT_TRUE(sweep.complete());
    EXPECT_EQ(sweep.reused, plan.size() / 2);
    EXPECT_EQ(sweep.executed, plan.size() - plan.size() / 2);
    expectSameMatrix(expected, sweep.matrix);
    // The journal now covers the whole plan.
    EXPECT_EQ(journal.size(), plan.size());
}

// ------------------------------------------------- watchdogs + quarantine

TEST(ResilientSweep, HungCellIsQuarantinedAndSalvaged)
{
    // One deliberately livelocked cell (chaos hang) among healthy ones;
    // the event budget converts the hang into a kDeadline quarantine
    // while the rest of the sweep completes normally.
    RunPlan plan;
    SystemConfig healthy = makeConfig(PolicyKind::kOnTouch, 4);
    plan.addCell("GEMM", "on-touch", healthy, workload::AppId::kGemm,
                 fastParams());
    SystemConfig hung = healthy;
    hung.chaos = sim::ChaosSpec::parse("hang:at=1000");
    plan.addCell("GEMM", "hung", hung, workload::AppId::kGemm,
                 fastParams());

    ResilientOptions options;
    options.eventBudget = 50000;
    ExperimentEngine engine;
    const SweepResult sweep = engine.runResilient(plan, options);

    EXPECT_FALSE(sweep.complete());
    EXPECT_FALSE(sweep.cancelled);
    ASSERT_EQ(sweep.failures.size(), 1u);
    const FailureRecord &failure = sweep.failures[0];
    EXPECT_EQ(failure.row, "GEMM");
    EXPECT_EQ(failure.label, "hung");
    EXPECT_EQ(failure.error.code, sim::ErrorCode::kDeadline);
    EXPECT_TRUE(failure.salvaged);
    EXPECT_EQ(failure.attempts, 1u);

    // The healthy cell's result is untouched by its hung neighbor.
    ASSERT_TRUE(sweep.matrix.at("GEMM").count("on-touch"));
    EXPECT_FALSE(sweep.matrix.at("GEMM").at("on-touch").partial);

    // Salvage: the hung cell still exported counters-so-far.
    ASSERT_TRUE(sweep.matrix.at("GEMM").count("hung"));
    const RunResult &partial = sweep.matrix.at("GEMM").at("hung");
    EXPECT_TRUE(partial.partial);
    ASSERT_TRUE(partial.error.has_value());
    EXPECT_EQ(partial.error->code, sim::ErrorCode::kDeadline);
}

TEST(ResilientSweep, SalvageOffDropsPartialResults)
{
    RunPlan plan;
    SystemConfig hung = makeConfig(PolicyKind::kOnTouch, 4);
    hung.chaos = sim::ChaosSpec::parse("hang:at=1000");
    plan.addCell("GEMM", "hung", hung, workload::AppId::kGemm,
                 fastParams());

    ResilientOptions options;
    options.eventBudget = 50000;
    options.salvagePartial = false;
    ExperimentEngine engine;
    const SweepResult sweep = engine.runResilient(plan, options);
    ASSERT_EQ(sweep.failures.size(), 1u);
    EXPECT_FALSE(sweep.failures[0].salvaged);
    EXPECT_TRUE(sweep.matrix.empty());
}

TEST(ResilientSweep, TransientFailuresAreRetried)
{
    // A chaos hang trips the deadline on every attempt, so the retry
    // budget is consumed in full and recorded in the manifest.
    RunPlan plan;
    SystemConfig hung = makeConfig(PolicyKind::kOnTouch, 4);
    hung.chaos = sim::ChaosSpec::parse("hang:at=1000");
    plan.addCell("GEMM", "hung", hung, workload::AppId::kGemm,
                 fastParams());

    ResilientOptions options;
    options.eventBudget = 50000;
    options.retries = 2;
    ExperimentEngine engine;
    const SweepResult sweep = engine.runResilient(plan, options);
    ASSERT_EQ(sweep.failures.size(), 1u);
    EXPECT_EQ(sweep.failures[0].attempts, 3u);
}

TEST(ResilientSweep, QuarantinedCellIsReusedAsFailureOnResume)
{
    RunPlan plan;
    SystemConfig hung = makeConfig(PolicyKind::kOnTouch, 4);
    hung.chaos = sim::ChaosSpec::parse("hang:at=1000");
    plan.addCell("GEMM", "hung", hung, workload::AppId::kGemm,
                 fastParams());

    TempPath path("grit_resume_failed.jsonl");
    ResilientOptions options;
    options.eventBudget = 50000;
    {
        RunJournal journal;
        journal.open(path.str(), "test_resilience", /*resume=*/false);
        options.journal = &journal;
        ExperimentEngine engine;
        ASSERT_EQ(engine.runResilient(plan, options).failures.size(), 1u);
    }

    // Resume: the quarantined cell is replayed from the journal — same
    // diagnostic, same salvaged counters, no re-simulation.
    RunJournal journal;
    journal.open(path.str(), "test_resilience", /*resume=*/true);
    options.journal = &journal;
    ExperimentEngine engine;
    const SweepResult sweep = engine.runResilient(plan, options);
    EXPECT_EQ(sweep.executed, 0u);
    EXPECT_EQ(sweep.reused, 1u);
    ASSERT_EQ(sweep.failures.size(), 1u);
    EXPECT_EQ(sweep.failures[0].error.code, sim::ErrorCode::kDeadline);
    EXPECT_TRUE(sweep.failures[0].salvaged);
    ASSERT_TRUE(sweep.matrix.count("GEMM"));
    EXPECT_TRUE(sweep.matrix.at("GEMM").at("hung").partial);
}

TEST(ResilientSweep, WallDeadlineTripsAsDeadlineError)
{
    // An already-elapsed wall deadline cancels between events; the
    // simulator surfaces it as a structured kDeadline, never an abort.
    SystemConfig config = makeConfig(PolicyKind::kOnTouch, 4);
    config.wallDeadlineSec = 1e-9;
    Simulator sim(config, workload::makeWorkload(workload::AppId::kGemm,
                                                 fastParams()));
    try {
        sim.run();
        FAIL() << "expected SimException";
    } catch (const sim::SimException &e) {
        EXPECT_EQ(e.code(), sim::ErrorCode::kDeadline);
    }

    Simulator salvage(config,
                      workload::makeWorkload(workload::AppId::kGemm,
                                             fastParams()));
    const RunResult partial = salvage.run(/*salvage_partial=*/true);
    EXPECT_TRUE(partial.partial);
    ASSERT_TRUE(partial.error.has_value());
    EXPECT_EQ(partial.error->code, sim::ErrorCode::kDeadline);
}

// ------------------------------------------------------------ cancel flag

TEST(ResilientSweep, CancelFlagSkipsUnstartedCells)
{
    static std::atomic<int> flag{SIGINT};
    const RunPlan plan = smallPlan();
    ResilientOptions options;
    options.cancelFlag = &flag;
    ExperimentEngine engine;
    const SweepResult sweep = engine.runResilient(plan, options);
    EXPECT_TRUE(sweep.cancelled);
    EXPECT_FALSE(sweep.complete());
    EXPECT_EQ(sweep.skipped, plan.size());
    EXPECT_EQ(sweep.executed, 0u);
    EXPECT_TRUE(sweep.matrix.empty());
    // Interrupted cells are not failures: resume re-executes them.
    EXPECT_TRUE(sweep.failures.empty());
}

TEST(ResilientSweep, InterruptedCellIsNeverJournaled)
{
    static std::atomic<int> flag{0};
    flag.store(SIGTERM);
    RunPlan plan;
    plan.addCell("GEMM", "on-touch", makeConfig(PolicyKind::kOnTouch, 4),
                 workload::AppId::kGemm, fastParams());

    TempPath path("grit_cancel.jsonl");
    RunJournal journal;
    journal.open(path.str(), "test_resilience", /*resume=*/false);
    ResilientOptions options;
    options.journal = &journal;
    options.cancelFlag = &flag;
    ExperimentEngine engine;
    const SweepResult sweep = engine.runResilient(plan, options);
    EXPECT_TRUE(sweep.cancelled);
    // Nothing landed in the journal, so a resume runs the cell fresh.
    EXPECT_EQ(journal.size(), 0u);
    flag.store(0);
}

// ------------------------------------------------------------ trace cache

TEST(TraceCacheBudget, EvictsLruBeyondByteBudget)
{
    workload::TraceCache cache;
    workload::WorkloadParams a = fastParams();
    workload::WorkloadParams b = fastParams();
    b.intensity = 0.5;  // distinct key, distinct trace

    const auto wa = cache.get(workload::AppId::kGemm, a);
    const std::uint64_t bytesA = workload::workloadBytes(*wa);
    ASSERT_GT(bytesA, 0u);
    EXPECT_EQ(cache.bytes(), bytesA);

    // Budget only fits one trace: inserting the second evicts the LRU
    // first one, but the outstanding handle stays valid.
    cache.setByteBudget(bytesA + 1);
    EXPECT_EQ(cache.byteBudget(), bytesA + 1);
    const auto wb = cache.get(workload::AppId::kGemm, b);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.bytes(), workload::workloadBytes(*wb));
    EXPECT_FALSE(wa->traces.empty());  // handle survives eviction

    // Re-requesting the evicted trace regenerates it deterministically.
    const auto wa2 = cache.get(workload::AppId::kGemm, a);
    EXPECT_EQ(cache.misses(), 3u);
    ASSERT_EQ(wa->traces.size(), wa2->traces.size());
    for (std::size_t g = 0; g < wa->traces.size(); ++g)
        EXPECT_EQ(wa->traces[g].size(), wa2->traces[g].size());
}

TEST(TraceCacheBudget, OversizedSingleTraceStillCaches)
{
    workload::TraceCache cache;
    cache.setByteBudget(1);  // smaller than any trace
    const auto w = cache.get(workload::AppId::kSt, fastParams());
    ASSERT_NE(w, nullptr);
    // The being-inserted entry is protected from its own insertion...
    EXPECT_EQ(cache.size(), 1u);
    // ...and a hit still serves it.
    cache.get(workload::AppId::kSt, fastParams());
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(TraceCacheBudget, UnboundedByDefaultAndClearResets)
{
    workload::TraceCache cache;
    EXPECT_EQ(cache.byteBudget(), 0u);
    cache.get(workload::AppId::kGemm, fastParams());
    EXPECT_GT(cache.bytes(), 0u);
    cache.clear();
    EXPECT_EQ(cache.bytes(), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(TraceCacheBudget, EngineHonorsEnvByteBudget)
{
    ExperimentEngine::Options options;
    options.traceCacheBytes = 4096;
    ExperimentEngine engine(options);
    EXPECT_EQ(engine.traceCache().byteBudget(), 4096u);
}

}  // namespace
}  // namespace grit::harness
