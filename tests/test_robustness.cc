/** @file Robustness suite: structured errors, chaos-spec parsing,
 *  config validation, deterministic fault injection, cross-layer
 *  invariant auditing (property-style sequences plus deliberate
 *  corruption), and chaos end-to-end runs. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/config.h"
#include "harness/experiment.h"
#include "harness/invariant_auditor.h"
#include "harness/simulator.h"
#include "policy/duplication.h"
#include "policy/on_touch.h"
#include "simcore/fault_injector.h"
#include "simcore/rng.h"
#include "simcore/sim_error.h"
#include "test_util.h"
#include "uvm/replica_directory.h"
#include "workload/apps.h"

namespace grit {
namespace {

using test::MiniSystem;

// -------------------------------------------------------------- SimError

TEST(SimError, FormatsCodeContextAndMessage)
{
    const sim::SimError err(sim::ErrorCode::kTraceLoad, "file vanished",
                            "fig17.json");
    EXPECT_EQ(err.str(),
              "error [trace-load] fig17.json: file vanished");
    const sim::SimError bare(sim::ErrorCode::kInternal, "oops");
    EXPECT_EQ(bare.str(), "error [internal]: oops");
}

TEST(SimError, EveryCodeHasAStableName)
{
    EXPECT_STREQ(sim::errorCodeName(sim::ErrorCode::kConfigInvalid),
                 "config-invalid");
    EXPECT_STREQ(sim::errorCodeName(sim::ErrorCode::kBadArgument),
                 "bad-argument");
    EXPECT_STREQ(sim::errorCodeName(sim::ErrorCode::kChaosSpec),
                 "chaos-spec");
    EXPECT_STREQ(sim::errorCodeName(sim::ErrorCode::kEventLimit),
                 "event-limit");
    EXPECT_STREQ(sim::errorCodeName(sim::ErrorCode::kNoProgress),
                 "no-progress");
    EXPECT_STREQ(sim::errorCodeName(sim::ErrorCode::kInvariant),
                 "invariant");
}

TEST(SimError, ThrowIfInvalidAggregatesViolations)
{
    EXPECT_NO_THROW(sim::throwIfInvalid({}, "ctx"));
    std::vector<sim::SimError> bad;
    bad.emplace_back(sim::ErrorCode::kConfigInvalid, "a is broken", "a");
    bad.emplace_back(sim::ErrorCode::kConfigInvalid, "b is broken", "b");
    try {
        sim::throwIfInvalid(bad, "MyConfig");
        FAIL() << "expected SimException";
    } catch (const sim::SimException &e) {
        EXPECT_EQ(e.code(), sim::ErrorCode::kConfigInvalid);
        EXPECT_NE(std::string(e.what()).find("a is broken"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("b is broken"),
                  std::string::npos);
    }
}

// ------------------------------------------------------------- ChaosSpec

TEST(ChaosSpec, EmptyTextIsInert)
{
    const sim::ChaosSpec spec = sim::ChaosSpec::parse("");
    EXPECT_FALSE(spec.any());
    EXPECT_EQ(spec.summary(), "none");
}

TEST(ChaosSpec, ParsesEveryClause)
{
    const sim::ChaosSpec spec = sim::ChaosSpec::parse(
        "seed=42;linkflap:period=1000,duty=0.25,prob=0.5;"
        "linkslow:factor=4,period=2000,duty=0.5;"
        "svclat:extra=300;"
        "pressure:pages=8,period=5000,start=10000;"
        "paflush:period=7000;"
        "padisable:start=100,end=900");
    EXPECT_TRUE(spec.any());
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_EQ(spec.linkFlap.period, 1000u);
    EXPECT_DOUBLE_EQ(spec.linkFlap.duty, 0.25);
    EXPECT_DOUBLE_EQ(spec.linkFlap.prob, 0.5);
    EXPECT_EQ(spec.linkSlow.factor, 4u);
    EXPECT_EQ(spec.serviceDelay.extra, 300u);
    EXPECT_EQ(spec.pressure.pages, 8u);
    EXPECT_EQ(spec.pressure.start, 10000u);
    EXPECT_EQ(spec.paFlush.period, 7000u);
    EXPECT_EQ(spec.paDisable.start, 100u);
    EXPECT_EQ(spec.paDisable.end, 900u);
    EXPECT_EQ(spec.summary(),
              "linkflap+linkslow+svclat+pressure+paflush+padisable");
}

TEST(ChaosSpec, RejectsMalformedInputWithStructuredError)
{
    const char *bad[] = {
        "bogusclause:x=1",          // unknown clause
        "linkflap:bogus=1",         // unknown key
        "linkflap:duty=0.5",        // missing required period
        "linkflap:period=abc",      // not a number
        "linkflap:period=1,duty=2", // duty outside [0, 1]
        "pressure:pages=4",         // missing period
        "padisable:end=5",          // missing start
        "padisable:start=9,end=3",  // end before start
        "seed",                     // bare key
    };
    for (const char *text : bad) {
        try {
            sim::ChaosSpec::parse(text);
            FAIL() << "accepted: " << text;
        } catch (const sim::SimException &e) {
            EXPECT_EQ(e.code(), sim::ErrorCode::kChaosSpec) << text;
        }
    }
}

// -------------------------------------------------- SystemConfig::validate

TEST(ConfigValidate, DefaultsAreClean)
{
    for (harness::PolicyKind kind :
         {harness::PolicyKind::kOnTouch, harness::PolicyKind::kGrit}) {
        EXPECT_TRUE(harness::makeConfig(kind, 4).validate().empty());
    }
}

TEST(ConfigValidate, CatchesEachBrokenKnob)
{
    using harness::PolicyKind;
    using harness::SystemConfig;
    auto expectBad = [](const SystemConfig &config,
                        const std::string &where) {
        const auto violations = config.validate();
        ASSERT_FALSE(violations.empty()) << where;
        bool found = false;
        for (const sim::SimError &v : violations)
            found |= v.context.find(where) != std::string::npos;
        EXPECT_TRUE(found) << "no violation mentions " << where;
    };

    SystemConfig c = harness::makeConfig(PolicyKind::kOnTouch, 4);
    c.numGpus = 0;
    expectBad(c, "numGpus");

    c = harness::makeConfig(PolicyKind::kOnTouch, 4);
    c.geometry.baseSize = 0;
    expectBad(c, "geometry.baseSize");
    c.geometry.baseSize = 32;  // power of two, smaller than a line
    expectBad(c, "geometry.baseSize");
    c.geometry.baseSize = 12 * 1024;  // not a power of two
    expectBad(c, "geometry.baseSize");
    c = harness::makeConfig(PolicyKind::kOnTouch, 4);
    c.geometry.hugePages = true;
    c.geometry.hugeSize = c.geometry.baseSize;  // must exceed the base
    expectBad(c, "geometry.hugeSize");
    c.geometry.hugeSize = 2 * sim::kPageSize2M;
    c.geometry.promoteFaultThreshold = 0;
    expectBad(c, "geometry.promoteFaultThreshold");

    c = harness::makeConfig(PolicyKind::kOnTouch, 4);
    c.gpu.lanes = 0;
    expectBad(c, "gpu.lanes");

    c = harness::makeConfig(PolicyKind::kOnTouch, 4);
    c.gpu.l2TlbEntries = 100;  // not a multiple of 16 ways
    expectBad(c, "gpu.l2Tlb");

    c = harness::makeConfig(PolicyKind::kOnTouch, 4);
    c.fabric.nvlinkGBs = 0.0;
    expectBad(c, "fabric.nvlinkGBs");
    c.fabric.nvlinkGBs = -1.0;
    expectBad(c, "fabric.nvlinkGBs");

    c = harness::makeConfig(PolicyKind::kOnTouch, 4);
    c.fabric.pcieLatency = 0;
    expectBad(c, "fabric.pcieLatency");

    c = harness::makeConfig(PolicyKind::kOnTouch, 4);
    c.uvm.servers = 0;
    expectBad(c, "uvm.servers");

    c = harness::makeConfig(PolicyKind::kGrit, 4);
    c.grit.faultThreshold = 0;
    expectBad(c, "grit.faultThreshold");

    c = harness::makeConfig(PolicyKind::kGrit, 4);
    c.grit.paCacheWays = 0;
    expectBad(c, "grit.paCache");

    c = harness::makeConfig(PolicyKind::kOnTouch, 4);
    c.timeline = true;
    c.timelineIntervalCycles = 0;
    expectBad(c, "timelineIntervalCycles");

    c = harness::makeConfig(PolicyKind::kOnTouch, 4);
    c.auditIntervalCycles = 1000;  // audit itself left off
    expectBad(c, "audit");
}

TEST(ConfigValidate, SimulatorConstructionRejectsBrokenConfig)
{
    workload::WorkloadParams params;
    params.footprintDivisor = 512;
    params.intensity = 0.05;
    harness::SystemConfig config =
        harness::makeConfig(harness::PolicyKind::kOnTouch, 4);
    config.gpu.lanes = 0;
    try {
        harness::runApp(workload::AppId::kBfs, config, params);
        FAIL() << "expected SimException";
    } catch (const sim::SimException &e) {
        EXPECT_EQ(e.code(), sim::ErrorCode::kConfigInvalid);
    }
}

TEST(ConfigValidate, SimulatorRejectsGpuCountMismatch)
{
    workload::WorkloadParams params;
    params.numGpus = 2;
    params.footprintDivisor = 512;
    params.intensity = 0.05;
    const workload::Workload workload =
        workload::makeWorkload(workload::AppId::kBfs, params);
    const harness::SystemConfig config =
        harness::makeConfig(harness::PolicyKind::kOnTouch, 4);
    try {
        harness::runWorkload(config, workload);
        FAIL() << "expected SimException";
    } catch (const sim::SimException &e) {
        EXPECT_EQ(e.code(), sim::ErrorCode::kConfigInvalid);
        EXPECT_NE(e.error().context.find(workload.name),
                  std::string::npos);
    }
}

// ----------------------------------------------------------- FaultInjector

TEST(FaultInjector, DecisionsAreAPureFunctionOfSeedAndTime)
{
    const sim::ChaosSpec spec = sim::ChaosSpec::parse(
        "seed=9;linkflap:period=1000,duty=0.3,prob=0.6");
    sim::FaultInjector a(spec);
    sim::FaultInjector b(spec);
    bool saw_down = false;
    bool saw_up = false;
    for (sim::Cycle t = 0; t < 50'000; t += 37) {
        const bool down = a.linkDown(0, 1, t);
        EXPECT_EQ(down, b.linkDown(0, 1, t));
        saw_down |= down;
        saw_up |= !down;
    }
    EXPECT_TRUE(saw_down);
    EXPECT_TRUE(saw_up);
}

TEST(FaultInjector, DifferentSeedsFlapDifferentWindows)
{
    sim::FaultInjector a(
        sim::ChaosSpec::parse("seed=1;linkflap:period=1000,prob=0.5"));
    sim::FaultInjector b(
        sim::ChaosSpec::parse("seed=2;linkflap:period=1000,prob=0.5"));
    int differing = 0;
    for (sim::Cycle t = 0; t < 200'000; t += 1000)
        differing += a.linkDown(0, 1, t) != b.linkDown(0, 1, t) ? 1 : 0;
    EXPECT_GT(differing, 10);
}

TEST(FaultInjector, LinkFlapRespectsDutyWindow)
{
    // prob=1: every window flaps, so the link must be down exactly
    // during the first duty fraction of each period.
    sim::FaultInjector inj(sim::ChaosSpec::parse(
        "linkflap:period=1000,duty=0.2,prob=1"));
    EXPECT_TRUE(inj.linkDown(0, 1, 0));
    EXPECT_TRUE(inj.linkDown(0, 1, 199));
    EXPECT_FALSE(inj.linkDown(0, 1, 200));
    EXPECT_FALSE(inj.linkDown(0, 1, 999));
    EXPECT_TRUE(inj.linkDown(0, 1, 1000));
}

TEST(FaultInjector, LinkSlowAndServiceDelayWindows)
{
    sim::FaultInjector inj(sim::ChaosSpec::parse(
        "linkslow:factor=8,period=100,duty=0.5;svclat:extra=250"));
    EXPECT_EQ(inj.linkSlowFactor(0, 1, 10), 8u);
    EXPECT_EQ(inj.linkSlowFactor(0, 1, 60), 1u);  // past the duty
    // period=0 means "always" for svclat.
    EXPECT_EQ(inj.extraServiceCycles(0), 250u);
    EXPECT_EQ(inj.extraServiceCycles(123'456), 250u);
}

TEST(FaultInjector, PaCacheWindowsAndOneShotFlush)
{
    sim::FaultInjector inj(sim::ChaosSpec::parse(
        "paflush:period=500;padisable:start=1000,end=2000"));
    EXPECT_FALSE(inj.paCacheDown(999));
    EXPECT_TRUE(inj.paCacheDown(1000));
    EXPECT_TRUE(inj.paCacheDown(1999));
    EXPECT_FALSE(inj.paCacheDown(2000));

    EXPECT_FALSE(inj.paFlushDue(100));  // window 0 never flushes
    EXPECT_TRUE(inj.paFlushDue(520));   // first query in window 1
    EXPECT_FALSE(inj.paFlushDue(530));  // once per window
    EXPECT_TRUE(inj.paFlushDue(1700));  // window 3
}

// ------------------------------------------------------- InvariantAuditor

/** Seeded random migrate/duplicate/collapse/evict/pressure sequences
 *  must leave the layers consistent: zero violations after every op
 *  batch. */
TEST(InvariantAuditor, PropertyRandomOpSequencesStayConsistent)
{
    for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
        MiniSystem sys(4, /*capacity_pages=*/24);
        sys.usePolicy(std::make_unique<policy::DuplicationPolicy>());
        sim::InvariantAuditor auditor(*sys.driver);
        sim::Rng rng(seed);
        sim::Cycle now = 1000;

        for (int op = 0; op < 400; ++op) {
            const sim::PageId page = rng.below(64);
            const sim::GpuId gpu =
                static_cast<sim::GpuId>(rng.below(4));
            const uvm::PageInfo *info =
                sys.driver->directory().find(page);
            const sim::GpuId owner =
                info != nullptr ? info->owner : sim::kHostId;
            switch (rng.below(6)) {
              case 0:
                sys.driver->migratePage(
                    page, gpu, now, stats::LatencyKind::kPageMigration);
                break;
              case 1:
                // duplicatePage requires a non-owner, non-holder target.
                if (owner != gpu &&
                    (info == nullptr || !info->hasReplica(gpu)))
                    sys.driver->duplicatePage(page, gpu, now);
                break;
              case 2:
                sys.driver->handleFault(gpu, page, rng.chance(0.5),
                                        false, now);
                break;
              case 3:
                // mapRemote requires the target to hold no local copy.
                if (owner != gpu &&
                    (info == nullptr || !info->hasReplica(gpu)))
                    sys.driver->mapRemote(page, gpu, now);
                break;
              case 4:
                // Protection-fault path: write collapse of replicas.
                if (info != nullptr && info->touched)
                    sys.driver->handleFault(gpu, page, true, true, now);
                break;
              default:
                sys.driver->injectCapacityPressure(gpu, 2, now);
                break;
            }
            now += 500;
            if (op % 50 == 49) {
                const auto violations = auditor.audit();
                for (const sim::SimError &v : violations)
                    ADD_FAILURE()
                        << "seed " << seed << " op " << op << ": "
                        << v.str();
                if (!violations.empty())
                    return;
            }
        }
        EXPECT_GT(auditor.audits(), 0u);
        EXPECT_EQ(auditor.violations(), 0u);
    }
}

TEST(InvariantAuditor, DetectsDeliberateDirectoryCorruption)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    sys.driver->handleFault(0, 10, false, false, 1000);
    sys.driver->handleFault(1, 20, false, false, 2000);

    sim::InvariantAuditor auditor(*sys.driver);
    EXPECT_TRUE(auditor.audit().empty());

    // Corrupt: claim GPU 1 holds a replica it never allocated.
    sys.driver->directory().info(10).addReplica(1);
    const auto violations = auditor.audit();
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations.front().code, sim::ErrorCode::kInvariant);
    bool mentions_replica = false;
    for (const sim::SimError &v : violations)
        mentions_replica |=
            v.message.find("replica") != std::string::npos;
    EXPECT_TRUE(mentions_replica);
    EXPECT_EQ(auditor.violations(), violations.size());
}

TEST(InvariantAuditor, DetectsPageTableResidencyDrift)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    sys.driver->handleFault(0, 5, false, false, 1000);

    // Corrupt: install a local PTE for a page with no frame behind it.
    sys.gpu(1).pageTable().install(99, mem::MappingKind::kLocal, 1,
                                   false);
    sim::InvariantAuditor auditor(*sys.driver);
    const auto violations = auditor.audit();
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations.front().code, sim::ErrorCode::kInvariant);
}

// ------------------------------------------------------ chaos end to end

TEST(ChaosEndToEnd, PerturbedRunCompletesRecoversAndStaysConsistent)
{
    workload::WorkloadParams params;
    params.footprintDivisor = 256;
    params.intensity = 0.1;
    harness::SystemConfig config =
        harness::makeConfig(harness::PolicyKind::kGrit, 4);
    config.chaos = sim::ChaosSpec::parse(
        "seed=5;linkflap:period=20000,duty=0.2;"
        "pressure:pages=4,period=50000;paflush:period=40000");
    config.audit = true;

    const harness::RunResult r =
        harness::runApp(workload::AppId::kBfs, config, params);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_TRUE(r.auditFindings.empty());

    auto counter = [&r](const std::string &name) {
        for (const auto &[k, v] : r.counters)
            if (k == name)
                return v;
        return std::uint64_t{0};
    };
    EXPECT_GT(counter("chaos.injected"), 0u);
    EXPECT_GT(counter("chaos.recovered"), 0u);
    EXPECT_GT(counter("audit.audits"), 0u);
    EXPECT_EQ(counter("audit.violations"), 0u);

    // Same spec, same seed: the chaos run is fully reproducible.
    const harness::RunResult again =
        harness::runApp(workload::AppId::kBfs, config, params);
    EXPECT_EQ(r.cycles, again.cycles);
    EXPECT_EQ(r.counters, again.counters);
}

TEST(ChaosEndToEnd, PaCacheLossFallsBackToPaTable)
{
    workload::WorkloadParams params;
    params.footprintDivisor = 256;
    params.intensity = 0.1;
    harness::SystemConfig config =
        harness::makeConfig(harness::PolicyKind::kGrit, 4);
    config.chaos = sim::ChaosSpec::parse("padisable:start=0");
    config.audit = true;

    const harness::RunResult r =
        harness::runApp(workload::AppId::kBfs, config, params);
    EXPECT_TRUE(r.auditFindings.empty());
    std::uint64_t fallbacks = 0;
    for (const auto &[k, v] : r.counters)
        if (k == "chaos.pa_table_fallbacks")
            fallbacks = v;
    EXPECT_GT(fallbacks, 0u);
}

}  // namespace
}  // namespace grit
