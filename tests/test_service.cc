/** @file Simulation-service suite: result-store crash safety and
 *  content addressing, fair-share admission, wire-protocol round
 *  trips, deterministic retry backoff, and the daemon core —
 *  execute/cache/dedupe, overload shedding, drain semantics,
 *  deadline salvage, and worker-count invariance. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "harness/record_frame.h"
#include "harness/run_journal.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/request_queue.h"
#include "service/result_store.h"
#include "service/server.h"
#include "service/socket.h"
#include "simcore/sim_error.h"

namespace grit::service {
namespace {

/** RAII temp file path deleted at scope exit. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".quarantine").c_str());
    }
    ~TempPath()
    {
        std::remove(path_.c_str());
        std::remove((path_ + ".quarantine").c_str());
    }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

/** A complete "ok" journal entry, distinct per @p fingerprint. */
harness::JournalEntry
okEntry(const std::string &fingerprint, std::uint64_t cycles)
{
    harness::JournalEntry entry;
    entry.fingerprint = fingerprint;
    entry.row = "GEMM";
    entry.label = "grit";
    entry.status = "ok";
    entry.attempts = 1;
    entry.hasResult = true;
    entry.result.cycles = cycles;
    entry.result.accesses = cycles / 2;
    entry.result.accessesBatched = 3;
    return entry;
}

/** A small, fast run request (the golden-pinned workload scale). */
Request
runRequest(const std::string &client, const std::string &app,
           const std::string &policy)
{
    Request request;
    request.op = "run";
    request.run.client = client;
    request.run.app = app;
    request.run.policy = policy;
    request.run.numGpus = 2;
    request.run.params.numGpus = 2;
    request.run.params.footprintDivisor = 128;
    request.run.params.intensity = 0.2;
    return request;
}

/** Poll @p pred up to ~10 s; true as soon as it holds. */
bool
waitFor(const std::function<bool()> &pred)
{
    for (int waited = 0; waited < 10000; waited += 5) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

/** Execution gate: holds every worker at the door until release(). */
struct Gate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
    std::atomic<unsigned> arrivals{0};

    void wait()
    {
        arrivals.fetch_add(1);
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return open; });
    }
    void release()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            open = true;
        }
        cv.notify_all();
    }
};

// ------------------------------------------------------------ ResultStore

TEST(ResultStore, RoundTripsAndSurvivesReopen)
{
    TempPath path("store_roundtrip.jsonl");
    const harness::JournalEntry a = okEntry("aaaa000011112222", 100);
    const harness::JournalEntry b = okEntry("bbbb000011112222", 200);
    {
        ResultStore store;
        store.open(path.str());
        EXPECT_EQ(store.size(), 0u);
        EXPECT_EQ(store.find(a.fingerprint), nullptr);
        store.put(a);
        store.put(b);
        store.put(a);  // duplicate fingerprint: first record wins
        EXPECT_EQ(store.size(), 2u);
        store.close();
    }
    ResultStore store;
    store.open(path.str());
    EXPECT_EQ(store.size(), 2u);
    const harness::JournalEntry *hitA = store.find(a.fingerprint);
    const harness::JournalEntry *hitB = store.find(b.fingerprint);
    ASSERT_NE(hitA, nullptr);
    ASSERT_NE(hitB, nullptr);
    // Byte-identical round trip through the journal serialization.
    EXPECT_EQ(harness::journalLine(*hitA), harness::journalLine(a));
    EXPECT_EQ(harness::journalLine(*hitB), harness::journalLine(b));
}

TEST(ResultStore, TornTailIsDroppedAndTruncated)
{
    TempPath path("store_torn.jsonl");
    {
        ResultStore store;
        store.open(path.str());
        store.put(okEntry("aaaa000011112222", 100));
        store.put(okEntry("bbbb000011112222", 200));
    }
    std::uintmax_t intactBytes = 0;
    {
        std::ifstream in(path.str(), std::ios::ate | std::ios::binary);
        intactBytes = static_cast<std::uintmax_t>(in.tellg());
    }
    // A kill -9 mid-append leaves an unterminated record fragment.
    {
        std::ofstream out(path.str(),
                          std::ios::app | std::ios::binary);
        out << "{\"fingerprint\":\"cccc0000";
    }
    ResultStore store;
    store.open(path.str());
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.find("cccc000011112222"), nullptr);
    // The torn bytes are gone from disk, so a future append can never
    // concatenate onto them.
    std::ifstream in(path.str(), std::ios::ate | std::ios::binary);
    EXPECT_EQ(static_cast<std::uintmax_t>(in.tellg()), intactBytes);
    store.put(okEntry("dddd000011112222", 400));
    ResultStore reopened;
    reopened.open(path.str());
    EXPECT_EQ(reopened.size(), 3u);
}

TEST(ResultStore, RejectsFailuresAndPartials)
{
    TempPath path("store_reject.jsonl");
    ResultStore store;
    store.open(path.str());

    harness::JournalEntry failed = okEntry("aaaa000011112222", 100);
    failed.status = "failed";
    failed.error.emplace(sim::ErrorCode::kDeadline, "budget", "ctx");
    EXPECT_THROW(store.put(failed), sim::SimException);

    harness::JournalEntry partial = okEntry("bbbb000011112222", 200);
    partial.result.partial = true;
    EXPECT_THROW(store.put(partial), sim::SimException);

    EXPECT_EQ(store.size(), 0u);
}

TEST(ResultStore, RefusesForeignFile)
{
    TempPath path("store_foreign.jsonl");
    {
        std::ofstream out(path.str());
        out << "{\"schema\":\"something-else\",\"version\":1}\n";
    }
    ResultStore store;
    EXPECT_THROW(store.open(path.str()), sim::SimException);
}

TEST(ResultStore, CorruptHeaderFailsWithStoreCorrupt)
{
    TempPath path("store_bad_header.jsonl");
    {
        std::ofstream out(path.str(), std::ios::binary);
        out << "not json at all\n";
        out << harness::frameRecord(
                   harness::journalLine(okEntry("aaaa000011112222", 1)))
            << "\n";
    }
    ResultStore store;
    try {
        store.open(path.str());
        FAIL() << "opened a store with a damaged header";
    } catch (const sim::SimException &e) {
        EXPECT_EQ(e.code(), sim::ErrorCode::kStoreCorrupt);
    }
}

TEST(ResultStore, ScrubQuarantinesCorruptRecordAndKeepsTheRest)
{
    TempPath path("store_scrub.jsonl");
    const harness::JournalEntry a = okEntry("aaaa000011112222", 100);
    const harness::JournalEntry b = okEntry("bbbb000011112222", 200);
    const harness::JournalEntry c = okEntry("cccc000011112222", 300);
    {
        ResultStore store;
        store.open(path.str());
        store.put(a);
        store.put(b);
        store.put(c);
    }
    // Flip one payload byte of the SECOND record (file line 3): the
    // CRC must catch it, and — unlike truncate-at-first-bad-byte —
    // record c behind it must survive.
    {
        std::ifstream in(path.str(), std::ios::binary);
        std::vector<std::string> lines;
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
        in.close();
        ASSERT_EQ(lines.size(), 4u);
        lines[2][30] = static_cast<char>(lines[2][30] ^ 0x80);
        std::ofstream out(path.str(),
                          std::ios::binary | std::ios::trunc);
        for (const std::string &l : lines)
            out << l << "\n";
    }
    ResultStore store;
    store.open(path.str());
    EXPECT_EQ(store.size(), 2u);
    EXPECT_NE(store.find(a.fingerprint), nullptr);
    EXPECT_EQ(store.find(b.fingerprint), nullptr);
    EXPECT_NE(store.find(c.fingerprint), nullptr);

    const harness::ScrubStats scrub = store.scrubStats();
    EXPECT_EQ(scrub.scanned, 3u);
    EXPECT_EQ(scrub.valid, 2u);
    EXPECT_EQ(scrub.quarantined, 1u);
    EXPECT_EQ(scrub.truncated, 0u);

    // The damaged raw line is preserved in the sidecar, not destroyed.
    std::ifstream sidecar(path.str() + ".quarantine");
    ASSERT_TRUE(sidecar.is_open());
    std::string preserved;
    ASSERT_TRUE(std::getline(sidecar, preserved));
    EXPECT_EQ(preserved.substr(0, 4), "GF1 ");

    // The quarantined fingerprint can be stored again.
    store.put(b);
    EXPECT_EQ(store.size(), 3u);
}

TEST(ResultStore, SeededBitflipsQuarantineExactlyTheDamage)
{
    TempPath path("store_bitflip.jsonl");
    {
        ResultStore store;
        store.open(path.str());
        for (unsigned i = 0; i < 8; ++i)
            store.put(okEntry("f0000000000000f" + std::to_string(i),
                              100 + i));
    }
    const harness::CorruptionReport report =
        harness::injectBitflips(path.str(), 20260809, 6);
    ASSERT_FALSE(report.damagedLines.empty());

    ResultStore store;
    store.open(path.str());
    const harness::ScrubStats scrub = store.scrubStats();
    EXPECT_EQ(scrub.scanned, 8u);
    EXPECT_EQ(scrub.quarantined, report.damagedLines.size());
    EXPECT_EQ(scrub.valid, 8u - report.damagedLines.size());
    EXPECT_EQ(store.size(), 8u - report.damagedLines.size());
}

TEST(ResultStore, LoadIsLaterWinsPutIsFirstWins)
{
    TempPath path("store_dup.jsonl");
    const harness::JournalEntry first = okEntry("aaaa000011112222", 100);
    const harness::JournalEntry second =
        okEntry("aaaa000011112222", 999);
    {
        ResultStore store;
        store.open(path.str());
        store.put(first);
        // put() is first-wins: the duplicate is not even appended.
        store.put(second);
        EXPECT_EQ(store.size(), 1u);
        EXPECT_EQ(store.find(first.fingerprint)->result.cycles, 100u);
    }
    // Force a duplicate ONTO DISK (e.g. two daemons once raced on the
    // same store file) and reload: load-time indexing is later-wins,
    // the documented recovery semantics.
    {
        std::ofstream out(path.str(),
                          std::ios::binary | std::ios::app);
        out << harness::frameRecord(harness::journalLine(second))
            << "\n";
    }
    ResultStore store;
    store.open(path.str());
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.scrubStats().valid, 2u);
    ASSERT_NE(store.find(first.fingerprint), nullptr);
    EXPECT_EQ(store.find(first.fingerprint)->result.cycles, 999u);
}

TEST(ResultStore, ReadsLegacyUnframedFiles)
{
    TempPath path("store_legacy.jsonl");
    const harness::JournalEntry a = okEntry("aaaa000011112222", 100);
    const harness::JournalEntry b = okEntry("bbbb000011112222", 200);
    {
        // A store written before record framing existed: plain JSONL.
        std::ofstream out(path.str(), std::ios::binary);
        out << "{\"schema\":\"grit-result-store\",\"version\":1}\n"
            << harness::journalLine(a) << "\n"
            << harness::journalLine(b) << "\n";
    }
    ResultStore store;
    store.open(path.str());
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.scrubStats().valid, 2u);
    EXPECT_EQ(store.scrubStats().quarantined, 0u);
    EXPECT_EQ(harness::journalLine(*store.find(a.fingerprint)),
              harness::journalLine(a));

    // Compaction upgrades legacy records to framed ones.
    const ResultStore::CompactionStats stats = store.compact();
    EXPECT_EQ(stats.recordsIn, 2u);
    EXPECT_EQ(stats.kept, 2u);
    std::ifstream in(path.str(), std::ios::binary);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));  // header stays plain JSON
    EXPECT_EQ(line.front(), '{');
    while (std::getline(in, line))
        EXPECT_EQ(line.substr(0, 4), "GF1 ");
}

TEST(ResultStore, CompactShedsDuplicatesAndQuarantinedRecords)
{
    TempPath path("store_compact.jsonl");
    const harness::JournalEntry a = okEntry("aaaa000011112222", 100);
    const harness::JournalEntry aDup = okEntry("aaaa000011112222", 999);
    const harness::JournalEntry b = okEntry("bbbb000011112222", 200);
    {
        std::ofstream out(path.str(), std::ios::binary);
        out << "{\"schema\":\"grit-result-store\",\"version\":1}\n"
            << harness::frameRecord(harness::journalLine(a)) << "\n"
            << "GF1 garbage that will not verify\n"
            << harness::frameRecord(harness::journalLine(aDup)) << "\n"
            << harness::frameRecord(harness::journalLine(b)) << "\n";
    }
    ResultStore store;
    store.open(path.str());
    EXPECT_EQ(store.scrubStats().quarantined, 1u);

    const ResultStore::CompactionStats stats = store.compact();
    EXPECT_EQ(stats.recordsIn, 3u);
    EXPECT_EQ(stats.kept, 2u);
    EXPECT_EQ(stats.duplicatesDropped, 1u);
    // Compaction is first-wins over the append order.
    EXPECT_EQ(store.find(a.fingerprint)->result.cycles, 100u);
    EXPECT_NE(store.find(b.fingerprint), nullptr);

    // A reopened compacted store scrubs perfectly clean.
    ResultStore reopened;
    reopened.open(path.str());
    EXPECT_EQ(reopened.size(), 2u);
    const harness::ScrubStats scrub = reopened.scrubStats();
    EXPECT_EQ(scrub.scanned, 2u);
    EXPECT_EQ(scrub.valid, 2u);
    EXPECT_EQ(scrub.quarantined, 0u);
    EXPECT_EQ(scrub.truncated, 0u);

    // The store stays appendable after the fd swap under the rename.
    reopened.put(okEntry("cccc000011112222", 300));
    ResultStore again;
    again.open(path.str());
    EXPECT_EQ(again.size(), 3u);
}

TEST(ResultStore, FailedCompactionLeavesTheLiveStoreIntact)
{
    // `compact` is reachable from the wire in a long-lived daemon, so
    // a failed rewrite (ENOSPC, EPERM, ...) must throw without
    // touching the in-memory state: find/put/size and a retried
    // compact all keep working afterwards.
    TempPath path("store_compact_fail.jsonl");
    const harness::JournalEntry a = okEntry("aaaa000011112222", 100);
    const harness::JournalEntry aDup = okEntry("aaaa000011112222", 999);
    const harness::JournalEntry b = okEntry("bbbb000011112222", 200);
    {
        std::ofstream out(path.str(), std::ios::binary);
        out << "{\"schema\":\"grit-result-store\",\"version\":1}\n"
            << harness::frameRecord(harness::journalLine(a)) << "\n"
            << harness::frameRecord(harness::journalLine(aDup)) << "\n"
            << harness::frameRecord(harness::journalLine(b)) << "\n";
    }
    ResultStore store;
    store.open(path.str());
    EXPECT_EQ(store.size(), 2u);

    // Squat on the temp path with a directory: the rewrite cannot even
    // create its temp file and must fail before any cutover.
    const std::string tempPath = path.str() + ".compact";
    ASSERT_EQ(::mkdir(tempPath.c_str(), 0755), 0);
    EXPECT_THROW(store.compact(), sim::SimException);
    ASSERT_EQ(::rmdir(tempPath.c_str()), 0);

    // Everything still works: lookups, appends, and a retried compact.
    EXPECT_EQ(store.size(), 2u);
    ASSERT_NE(store.find(a.fingerprint), nullptr);
    EXPECT_EQ(store.find(a.fingerprint)->result.cycles, 999u);
    store.put(okEntry("cccc000011112222", 300));
    const ResultStore::CompactionStats stats = store.compact();
    EXPECT_EQ(stats.recordsIn, 4u);
    EXPECT_EQ(stats.kept, 3u);
    EXPECT_EQ(stats.duplicatesDropped, 1u);
    EXPECT_EQ(store.find(a.fingerprint)->result.cycles, 100u);

    ResultStore reopened;
    reopened.open(path.str());
    EXPECT_EQ(reopened.size(), 3u);
    EXPECT_EQ(reopened.scrubStats().quarantined, 0u);
}

// --------------------------------------------------------- FairShareQueue

TEST(FairShareQueue, RoundRobinAcrossClients)
{
    FairShareQueue queue(16);
    EXPECT_EQ(queue.push("c1", 1), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c1", 2), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c1", 3), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c2", 4), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c3", 5), Admission::kAdmitted);
    queue.close();  // so pop() cannot block
    // One turn per client per round — c1's backlog cannot starve
    // c2/c3 even though it was queued first.
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(1));
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(4));
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(5));
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(2));
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(3));
    EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(FairShareQueue, BoundedPushSheds)
{
    FairShareQueue queue(2);
    EXPECT_EQ(queue.push("c1", 1), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c2", 2), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c3", 3), Admission::kFull);
    EXPECT_EQ(queue.size(), 2u);
    queue.close();
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(1));
    EXPECT_EQ(queue.push("c3", 3), Admission::kClosed);
}

TEST(FairShareQueue, CloseDrainsThenReportsExhaustion)
{
    FairShareQueue queue(4);
    queue.push("c1", 7);
    queue.close();
    EXPECT_TRUE(queue.closed());
    EXPECT_EQ(queue.push("c1", 8), Admission::kClosed);
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(7));
    EXPECT_EQ(queue.pop(), std::nullopt);
    EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(FairShareQueue, PopBlocksUntilPush)
{
    FairShareQueue queue(4);
    std::optional<std::uint64_t> got;
    std::thread consumer([&] { got = queue.pop(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(queue.push("c1", 42), Admission::kAdmitted);
    consumer.join();
    EXPECT_EQ(got, std::optional<std::uint64_t>(42));
}

// --------------------------------------------------------------- protocol

TEST(ServiceProtocol, RequestLineRoundTrips)
{
    Request request = runRequest("alice", "BFS", "grit");
    request.run.deadlineSec = 2.5;
    request.run.eventBudget = 12345;
    request.run.chaos = "hang:at=1000";
    request.run.audit = true;
    const Request back = requestFromLine(requestLine(request));
    EXPECT_EQ(back.op, "run");
    EXPECT_EQ(back.run.client, "alice");
    EXPECT_EQ(back.run.app, "BFS");
    EXPECT_EQ(back.run.policy, "grit");
    EXPECT_EQ(back.run.numGpus, 2u);
    EXPECT_EQ(back.run.params, request.run.params);
    EXPECT_EQ(back.run.deadlineSec, 2.5);
    EXPECT_EQ(back.run.eventBudget, 12345u);
    EXPECT_EQ(back.run.chaos, "hang:at=1000");
    EXPECT_TRUE(back.run.audit);
    // Re-serialization is byte-stable (wire lines are comparable).
    EXPECT_EQ(requestLine(back), requestLine(request));
}

TEST(ServiceProtocol, ResponseLineRoundTripsEntryAndError)
{
    Response ok;
    ok.status = "ok";
    ok.cached = true;
    ok.persisted = true;
    ok.entry = okEntry("aaaa000011112222", 100);
    const Response okBack = responseFromLine(responseLine(ok));
    EXPECT_EQ(okBack.status, "ok");
    EXPECT_TRUE(okBack.cached);
    EXPECT_FALSE(okBack.deduped);
    EXPECT_TRUE(okBack.persisted);
    ASSERT_TRUE(okBack.entry.has_value());
    EXPECT_EQ(harness::journalLine(*okBack.entry),
              harness::journalLine(*ok.entry));

    Response refused;
    refused.status = "error";
    refused.error = sim::SimError(sim::ErrorCode::kServiceOverloaded,
                                  "queue full", "grit-service");
    const Response errBack = responseFromLine(responseLine(refused));
    EXPECT_EQ(errBack.status, "error");
    ASSERT_TRUE(errBack.error.has_value());
    EXPECT_EQ(errBack.error->code, sim::ErrorCode::kServiceOverloaded);
    EXPECT_FALSE(errBack.persisted);

    // A line without the persisted key (a pre-flag daemon) parses
    // leniently to false rather than failing.
    const Response legacy = responseFromLine(
        "{\"schema\":\"grit-service\",\"version\":1,"
        "\"status\":\"ok\",\"cached\":true,\"deduped\":false}");
    EXPECT_TRUE(legacy.cached);
    EXPECT_FALSE(legacy.persisted);

    Response stats;
    stats.status = "ok";
    ServiceCounters counters;
    counters.requests = 9;
    counters.hits = 4;
    counters.storeEntries = 2;
    stats.service = counters;
    const Response statsBack = responseFromLine(responseLine(stats));
    ASSERT_TRUE(statsBack.service.has_value());
    EXPECT_EQ(statsBack.service->requests, 9u);
    EXPECT_EQ(statsBack.service->hits, 4u);
    EXPECT_EQ(statsBack.service->storeEntries, 2u);
}

TEST(ServiceProtocol, MalformedLinesAreStructuredErrors)
{
    const std::vector<std::string> bad = {
        "",
        "not json",
        "[1,2,3]",
        "{\"schema\":\"grit-service\",\"version\":1}",  // no op
        "{\"schema\":\"nope\",\"version\":1,\"op\":\"ping\"}",
        "{\"schema\":\"grit-service\",\"version\":99,\"op\":\"ping\"}",
        "{\"schema\":\"grit-service\",\"version\":1,\"op\":\"dance\"}",
    };
    for (const std::string &line : bad) {
        try {
            (void)requestFromLine(line);
            FAIL() << "accepted: " << line;
        } catch (const sim::SimException &e) {
            EXPECT_EQ(e.code(), sim::ErrorCode::kBadArgument) << line;
        }
    }
    EXPECT_THROW((void)responseFromLine("not json"), sim::SimException);
}

TEST(ServiceProtocol, CellFromRequestValidatesAndFingerprints)
{
    Request good = runRequest("c", "GEMM", "grit");
    const harness::RunCell cell = cellFromRequest(good.run);
    EXPECT_EQ(cell.row, "GEMM");
    EXPECT_EQ(cell.label, "grit");
    const std::string fingerprint = harness::runFingerprint(cell);
    EXPECT_EQ(fingerprint.size(), 16u);

    // Resilience knobs are not part of the content address: a cached
    // complete result satisfies any deadline.
    Request tight = good;
    tight.run.deadlineSec = 0.001;
    tight.run.eventBudget = 1;
    EXPECT_EQ(harness::runFingerprint(cellFromRequest(tight.run)),
              fingerprint);

    // Chaos IS fingerprinted — a fault-injected run is a different cell.
    Request chaotic = good;
    chaotic.run.chaos = "hang:at=1000";
    EXPECT_NE(harness::runFingerprint(cellFromRequest(chaotic.run)),
              fingerprint);

    Request badApp = runRequest("c", "NOPE", "grit");
    EXPECT_THROW((void)cellFromRequest(badApp.run), sim::SimException);
    Request badPolicy = runRequest("c", "GEMM", "not-a-policy");
    EXPECT_THROW((void)cellFromRequest(badPolicy.run), sim::SimException);
    Request badGpus = runRequest("c", "GEMM", "grit");
    badGpus.run.numGpus = 0;
    EXPECT_THROW((void)cellFromRequest(badGpus.run), sim::SimException);
}

// ---------------------------------------------------------------- backoff

TEST(Backoff, DeterministicDoublingWithCap)
{
    // Same (key, attempt) → same delay, always within
    // [nominal/2, nominal] where nominal = base * 2^(attempt-1), cap.
    for (unsigned attempt = 1; attempt <= 12; ++attempt) {
        const std::uint64_t a = backoffDelayMs("k1", attempt, 50, 2000);
        const std::uint64_t b = backoffDelayMs("k1", attempt, 50, 2000);
        EXPECT_EQ(a, b);
        std::uint64_t nominal = 50;
        for (unsigned i = 1; i < attempt && nominal < 2000; ++i)
            nominal *= 2;
        if (nominal > 2000)
            nominal = 2000;
        EXPECT_GE(a, nominal / 2) << "attempt " << attempt;
        EXPECT_LE(a, nominal) << "attempt " << attempt;
    }
    // Late attempts saturate at the cap's jitter band.
    EXPECT_LE(backoffDelayMs("k1", 40, 50, 2000), 2000u);
    EXPECT_GE(backoffDelayMs("k1", 40, 50, 2000), 1000u);
}

// ------------------------------------------------------------- the daemon

TEST(ServiceServer, ExecutesThenServesFromStore)
{
    TempPath store("server_store.jsonl");
    Server::Options options;
    options.storePath = store.str();
    options.workers = 2;
    Server server(std::move(options));
    server.start();

    const Request request = runRequest("alice", "BFS", "on-touch");
    const Response first = server.handle(request);
    ASSERT_EQ(first.status, "ok");
    EXPECT_FALSE(first.cached);
    EXPECT_FALSE(first.deduped);
    EXPECT_TRUE(first.persisted);  // appended + fsync'd before the ack
    ASSERT_TRUE(first.entry.has_value());
    EXPECT_EQ(first.entry->status, "ok");
    EXPECT_TRUE(first.entry->hasResult);
    EXPECT_GT(first.entry->result.cycles, 0u);

    const Response second = server.handle(request);
    ASSERT_EQ(second.status, "ok");
    EXPECT_TRUE(second.cached);
    EXPECT_TRUE(second.persisted);
    ASSERT_TRUE(second.entry.has_value());
    EXPECT_EQ(harness::journalLine(*second.entry),
              harness::journalLine(*first.entry));

    const ServiceCounters counters = server.counters();
    EXPECT_EQ(counters.requests, 2u);
    EXPECT_EQ(counters.hits, 1u);
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.executed, 1u);
    EXPECT_EQ(counters.failures, 0u);
    EXPECT_EQ(counters.storeEntries, 1u);
    server.stop();

    // A restarted server — as after a kill -9 — reloads the fsync'd
    // store and serves the same bytes without re-executing.
    Server::Options reopened;
    reopened.storePath = store.str();
    Server restarted(std::move(reopened));
    restarted.start();
    EXPECT_EQ(restarted.counters().storeEntries, 1u);
    const Response warm = restarted.handle(request);
    ASSERT_EQ(warm.status, "ok");
    EXPECT_TRUE(warm.cached);
    ASSERT_TRUE(warm.entry.has_value());
    EXPECT_EQ(harness::journalLine(*warm.entry),
              harness::journalLine(*first.entry));
    EXPECT_EQ(restarted.counters().executed, 0u);
    restarted.stop();
}

TEST(ServiceServer, DedupesInflightIdenticalCells)
{
    Gate gate;
    Server::Options options;
    options.workers = 2;
    options.executionGate = [&gate](const std::string &) { gate.wait(); };
    Server server(std::move(options));
    server.start();

    const Request request = runRequest("alice", "GEMM", "on-touch");
    Response first, second;
    std::thread a([&] { first = server.handle(request); });
    ASSERT_TRUE(waitFor([&] { return gate.arrivals.load() == 1; }));
    std::thread b([&] { second = server.handle(request); });
    // The second request must attach to the held execution, not queue
    // a second one.
    ASSERT_TRUE(
        waitFor([&] { return server.counters().deduped == 1; }));
    gate.release();
    a.join();
    b.join();

    EXPECT_EQ(first.status, "ok");
    EXPECT_EQ(second.status, "ok");
    EXPECT_TRUE(first.deduped != second.deduped);  // exactly one attached
    // No --store on this server: both clients must see that their
    // result is not durable anywhere.
    EXPECT_FALSE(first.persisted);
    EXPECT_FALSE(second.persisted);
    ASSERT_TRUE(first.entry.has_value());
    ASSERT_TRUE(second.entry.has_value());
    EXPECT_EQ(harness::journalLine(*first.entry),
              harness::journalLine(*second.entry));

    const ServiceCounters counters = server.counters();
    EXPECT_EQ(counters.requests, 2u);
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.deduped, 1u);
    EXPECT_EQ(counters.executed, 1u);  // the cell ran exactly once
    server.stop();
}

TEST(ServiceServer, MismatchedBudgetsDoNotShareAnExecution)
{
    Gate gate;
    Server::Options options;
    options.workers = 2;
    options.executionGate = [&gate](const std::string &) { gate.wait(); };
    Server server(std::move(options));
    server.start();

    // Same cell, different resilience constraints. The second request
    // must NOT attach to the first execution: the budget it asked for
    // would not be the one enforced, so an attached waiter could be
    // handed an outcome its own constraints would never produce.
    Request unbounded = runRequest("alice", "GEMM", "on-touch");
    Request budgeted = unbounded;
    budgeted.run.eventBudget = 50000000;  // generous: still completes

    Response first, second;
    std::thread a([&] { first = server.handle(unbounded); });
    ASSERT_TRUE(waitFor([&] { return gate.arrivals.load() == 1; }));
    std::thread b([&] { second = server.handle(budgeted); });
    // A second arrival at the gate proves a second execution started.
    ASSERT_TRUE(waitFor([&] { return gate.arrivals.load() == 2; }));
    gate.release();
    a.join();
    b.join();

    EXPECT_EQ(first.status, "ok");
    EXPECT_EQ(second.status, "ok");
    EXPECT_FALSE(first.deduped);
    EXPECT_FALSE(second.deduped);
    // The deterministic engine converges: both runs complete, so both
    // return the same bytes even though they executed separately.
    ASSERT_TRUE(first.entry.has_value());
    ASSERT_TRUE(second.entry.has_value());
    EXPECT_EQ(harness::journalLine(*first.entry),
              harness::journalLine(*second.entry));

    const ServiceCounters counters = server.counters();
    EXPECT_EQ(counters.requests, 2u);
    EXPECT_EQ(counters.misses, 2u);
    EXPECT_EQ(counters.deduped, 0u);
    EXPECT_EQ(counters.executed, 2u);
    server.stop();
}

TEST(ServiceServer, ShedsWithStructuredErrorWhenQueueFull)
{
    Gate gate;
    Server::Options options;
    options.workers = 1;
    options.queueCapacity = 1;
    options.executionGate = [&gate](const std::string &) { gate.wait(); };
    Server server(std::move(options));
    server.start();

    // First cell occupies the only worker (held at the gate); second
    // fills the queue; the third must be shed, not hung.
    Response first, second;
    std::thread a(
        [&] { first = server.handle(runRequest("a", "BFS", "on-touch")); });
    ASSERT_TRUE(waitFor([&] { return gate.arrivals.load() == 1; }));
    std::thread b(
        [&] { second = server.handle(runRequest("b", "BFS", "grit")); });
    ASSERT_TRUE(waitFor([&] { return server.counters().misses == 2; }));

    const Response shed = server.handle(runRequest("c", "GEMM", "grit"));
    EXPECT_EQ(shed.status, "error");
    ASSERT_TRUE(shed.error.has_value());
    EXPECT_EQ(shed.error->code, sim::ErrorCode::kServiceOverloaded);
    EXPECT_EQ(server.counters().rejectedOverload, 1u);

    gate.release();
    a.join();
    b.join();
    EXPECT_EQ(first.status, "ok");
    EXPECT_EQ(second.status, "ok");
    server.stop();
}

TEST(ServiceServer, DrainingRefusesMissesButServesStoreHits)
{
    TempPath store("server_drain.jsonl");
    Server::Options options;
    options.storePath = store.str();
    Server server(std::move(options));
    server.start();

    const Request cached = runRequest("alice", "BFS", "on-touch");
    const Response executed = server.handle(cached);
    ASSERT_EQ(executed.status, "ok");

    server.beginDrain();
    EXPECT_TRUE(server.draining());

    // A stored result costs no execution, so drain still serves it.
    const Response hit = server.handle(cached);
    EXPECT_EQ(hit.status, "ok");
    EXPECT_TRUE(hit.cached);

    const Response refused =
        server.handle(runRequest("alice", "GEMM", "grit"));
    EXPECT_EQ(refused.status, "error");
    ASSERT_TRUE(refused.error.has_value());
    EXPECT_EQ(refused.error->code, sim::ErrorCode::kServiceDraining);
    EXPECT_EQ(server.counters().rejectedDraining, 1u);
    server.stop();
}

TEST(ServiceServer, DeadlineFailureSalvagesPartialAndIsNotCached)
{
    TempPath store("server_deadline.jsonl");
    Server::Options options;
    options.storePath = store.str();
    Server server(std::move(options));
    server.start();

    // A livelocked cell under an event budget: the watchdog quarantines
    // it as kDeadline with salvaged partial counters (grit-results v2).
    // The budget must undercut the engine's own safety valve
    // (16 * (accesses + 1024)) so it is the binding limit.
    Request hung = runRequest("alice", "GEMM", "on-touch");
    hung.run.chaos = "hang:at=1000";
    hung.run.eventBudget = 10000;
    const Response response = server.handle(hung);
    EXPECT_EQ(response.status, "failed");
    ASSERT_TRUE(response.entry.has_value());
    EXPECT_EQ(response.entry->status, "failed");
    ASSERT_TRUE(response.entry->error.has_value());
    EXPECT_EQ(response.entry->error->code, sim::ErrorCode::kDeadline);
    EXPECT_TRUE(response.entry->hasResult);
    EXPECT_TRUE(response.entry->result.partial);

    // Failures must never poison the cache: re-requesting re-executes.
    const ServiceCounters counters = server.counters();
    EXPECT_EQ(counters.failures, 1u);
    EXPECT_EQ(counters.storeEntries, 0u);
    const Response again = server.handle(hung);
    EXPECT_EQ(again.status, "failed");
    EXPECT_FALSE(again.cached);
    EXPECT_EQ(server.counters().executed, 2u);
    server.stop();
}

TEST(ServiceServer, ResultsInvariantUnderWorkerCount)
{
    const std::vector<std::pair<std::string, std::string>> cells = {
        {"BFS", "on-touch"},
        {"BFS", "grit"},
        {"GEMM", "on-touch"},
        {"GEMM", "grit"},
    };
    // Execute the same four cells on a 1-worker and a 4-worker server;
    // every entry must serialize byte-identically.
    std::map<std::string, std::string> lines1, lines4;
    for (const unsigned workers : {1u, 4u}) {
        Server::Options options;
        options.workers = workers;
        Server server(std::move(options));
        server.start();
        std::vector<Response> responses(cells.size());
        std::vector<std::thread> threads;
        for (std::size_t i = 0; i < cells.size(); ++i)
            threads.emplace_back([&, i] {
                responses[i] = server.handle(runRequest(
                    "c" + std::to_string(i), cells[i].first,
                    cells[i].second));
            });
        for (std::thread &t : threads)
            t.join();
        auto &lines = workers == 1 ? lines1 : lines4;
        for (const Response &response : responses) {
            ASSERT_EQ(response.status, "ok");
            ASSERT_TRUE(response.entry.has_value());
            lines[response.entry->fingerprint] =
                harness::journalLine(*response.entry);
        }
        server.stop();
    }
    EXPECT_EQ(lines1.size(), cells.size());
    EXPECT_EQ(lines1, lines4);
}

TEST(ServiceServer, SocketRoundTripWithClient)
{
    TempPath socket("svc_test.sock");
    TempPath store("svc_test_store.jsonl");
    Server::Options options;
    options.socketPath = socket.str();
    options.storePath = store.str();
    options.workers = 2;
    Server server(std::move(options));
    server.start();

    Client::Options clientOptions;
    clientOptions.socketPath = socket.str();
    Client client(clientOptions);

    Request ping;
    ping.op = "ping";
    EXPECT_EQ(client.submit(ping).status, "ok");

    const Response run =
        client.submit(runRequest("alice", "BFS", "on-touch"));
    ASSERT_EQ(run.status, "ok");
    ASSERT_TRUE(run.entry.has_value());
    EXPECT_TRUE(run.entry->hasResult);

    Request stats;
    stats.op = "stats";
    const Response counters = client.submit(stats);
    ASSERT_TRUE(counters.service.has_value());
    EXPECT_EQ(counters.service->requests, 1u);
    EXPECT_EQ(counters.service->executed, 1u);
    EXPECT_EQ(counters.service->storeEntries, 1u);
    server.stop();

    // With the daemon gone, the client fails structurally, fast.
    Client::Options deadOptions;
    deadOptions.socketPath = socket.str();
    deadOptions.retries = 1;
    deadOptions.backoffBaseMs = 1;
    Client dead(deadOptions);
    try {
        (void)dead.submit(ping);
        FAIL() << "submit to a stopped daemon succeeded";
    } catch (const sim::SimException &e) {
        EXPECT_EQ(e.code(), sim::ErrorCode::kInternal);
    }
}

// -------------------------------------------------------- new wire ops

TEST(ServiceProtocol, PingAndCompactOpsRoundTrip)
{
    for (const std::string op : {"ping", "stats", "compact"}) {
        Request request;
        request.op = op;
        const Request parsed = requestFromLine(requestLine(request));
        EXPECT_EQ(parsed.op, op);
    }

    Response pong;
    pong.status = "ok";
    pong.ping = PingInfo{"grit_serve/test", true};
    const Response parsed = responseFromLine(responseLine(pong));
    EXPECT_EQ(parsed.status, "ok");
    ASSERT_TRUE(parsed.ping.has_value());
    EXPECT_EQ(parsed.ping->version, "grit_serve/test");
    EXPECT_TRUE(parsed.ping->draining);
}

TEST(ServiceProtocol, ScrubCountersRoundTripOnTheWire)
{
    Response stats;
    stats.status = "ok";
    ServiceCounters c;
    c.requests = 7;
    c.storeEntries = 3;
    c.storeScanned = 5;
    c.storeValid = 3;
    c.storeQuarantined = 2;
    c.storeTruncated = 1;
    stats.service = c;
    const Response parsed = responseFromLine(responseLine(stats));
    ASSERT_TRUE(parsed.service.has_value());
    EXPECT_EQ(parsed.service->storeScanned, 5u);
    EXPECT_EQ(parsed.service->storeValid, 3u);
    EXPECT_EQ(parsed.service->storeQuarantined, 2u);
    EXPECT_EQ(parsed.service->storeTruncated, 1u);
}

TEST(ServiceServer, PingReportsVersionAndDrainState)
{
    Server::Options options;
    Server server(std::move(options));
    server.start();

    Request ping;
    ping.op = "ping";
    Response response = server.handle(ping);
    ASSERT_EQ(response.status, "ok");
    ASSERT_TRUE(response.ping.has_value());
    EXPECT_EQ(response.ping->version, Server::kVersion);
    EXPECT_FALSE(response.ping->draining);

    server.beginDrain();
    response = server.handle(ping);
    ASSERT_TRUE(response.ping.has_value());
    EXPECT_TRUE(response.ping->draining);
    server.stop();
}

TEST(ServiceServer, CompactVerbRewritesTheStore)
{
    TempPath store("svc_compact_store.jsonl");
    {
        // Seed the store with one valid and one corrupt record.
        std::ofstream out(store.str(), std::ios::binary);
        out << "{\"schema\":\"grit-result-store\",\"version\":1}\n"
            << harness::frameRecord(
                   harness::journalLine(okEntry("aaaa000011112222", 7)))
            << "\nGF1 broken beyond recognition!!\n";
    }
    Server::Options options;
    options.storePath = store.str();
    Server server(std::move(options));
    server.start();

    Request compact;
    compact.op = "compact";
    const Response response = server.handle(compact);
    ASSERT_EQ(response.status, "ok");
    ASSERT_TRUE(response.service.has_value());
    EXPECT_EQ(response.service->storeEntries, 1u);
    EXPECT_EQ(response.service->storeQuarantined, 1u);
    server.stop();

    // On disk: header + exactly the one valid record, scrubbing clean.
    ResultStore reopened;
    reopened.open(store.str());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.scrubStats().scanned, 1u);
    EXPECT_EQ(reopened.scrubStats().quarantined, 0u);
}

TEST(ServiceServer, CompactWithoutStoreIsStructuredError)
{
    Server::Options options;
    Server server(std::move(options));
    server.start();
    Request compact;
    compact.op = "compact";
    const Response response = server.handle(compact);
    ASSERT_EQ(response.status, "error");
    ASSERT_TRUE(response.error.has_value());
    EXPECT_EQ(response.error->code, sim::ErrorCode::kBadArgument);
    server.stop();
}

TEST(ServiceServer, OversizedLineGetsStructuredErrorAndConnectionLives)
{
    TempPath socket("svc_maxline.sock");
    Server::Options options;
    options.socketPath = socket.str();
    options.maxLineBytes = 256;
    Server server(std::move(options));
    server.start();

    const int fd = connectUnix(socket.str());
    ASSERT_GE(fd, 0);

    // An over-limit line (even with no newline yet at the limit) is
    // answered with bad-argument, never buffered unboundedly.
    ASSERT_TRUE(writeLine(fd, std::string(4096, 'x')));
    std::string line;
    ASSERT_TRUE(readLine(fd, line));
    const Response refused = responseFromLine(line);
    ASSERT_EQ(refused.status, "error");
    ASSERT_TRUE(refused.error.has_value());
    EXPECT_EQ(refused.error->code, sim::ErrorCode::kBadArgument);

    // The same connection still serves the next (well-formed) request.
    Request ping;
    ping.op = "ping";
    ASSERT_TRUE(writeLine(fd, requestLine(ping)));
    ASSERT_TRUE(readLine(fd, line));
    EXPECT_EQ(responseFromLine(line).status, "ok");

    ::close(fd);
    server.stop();

    const ServiceCounters counters = server.counters();
    EXPECT_EQ(counters.badRequests, 1u);
}

TEST(LineReader, BoundsLinesAndResyncsAfterOverflow)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string stream = "short\n" + std::string(64, 'y') +
                               "\nnext\nlast";
    ASSERT_TRUE(writeAll(fds[0], stream));
    ::shutdown(fds[0], SHUT_WR);

    LineReader reader(fds[1]);
    std::string line;
    EXPECT_EQ(reader.next(line, 16), LineReader::Status::kLine);
    EXPECT_EQ(line, "short");
    // The 64-byte line overflows the 16-byte ceiling, is discarded to
    // its newline, and the reader resynchronizes on the next line.
    EXPECT_EQ(reader.next(line, 16), LineReader::Status::kTooLong);
    EXPECT_EQ(reader.next(line, 16), LineReader::Status::kLine);
    EXPECT_EQ(line, "next");
    // "last" has no newline: EOF, not a line.
    EXPECT_EQ(reader.next(line, 16), LineReader::Status::kEof);

    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(LineReader, PipelinedRequestsInOneChunk)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_TRUE(writeAll(fds[0], "a\nb\nc\n"));
    ::shutdown(fds[0], SHUT_WR);

    LineReader reader(fds[1]);
    std::string line;
    std::vector<std::string> lines;
    while (reader.next(line, 1024) == LineReader::Status::kLine)
        lines.push_back(line);
    EXPECT_EQ(lines, (std::vector<std::string>{"a", "b", "c"}));

    ::close(fds[0]);
    ::close(fds[1]);
}

}  // namespace
}  // namespace grit::service
