/** @file Simulation-service suite: result-store crash safety and
 *  content addressing, fair-share admission, wire-protocol round
 *  trips, deterministic retry backoff, and the daemon core —
 *  execute/cache/dedupe, overload shedding, drain semantics,
 *  deadline salvage, and worker-count invariance. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "harness/run_journal.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/request_queue.h"
#include "service/result_store.h"
#include "service/server.h"
#include "simcore/sim_error.h"

namespace grit::service {
namespace {

/** RAII temp file path deleted at scope exit. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

/** A complete "ok" journal entry, distinct per @p fingerprint. */
harness::JournalEntry
okEntry(const std::string &fingerprint, std::uint64_t cycles)
{
    harness::JournalEntry entry;
    entry.fingerprint = fingerprint;
    entry.row = "GEMM";
    entry.label = "grit";
    entry.status = "ok";
    entry.attempts = 1;
    entry.hasResult = true;
    entry.result.cycles = cycles;
    entry.result.accesses = cycles / 2;
    entry.result.accessesBatched = 3;
    return entry;
}

/** A small, fast run request (the golden-pinned workload scale). */
Request
runRequest(const std::string &client, const std::string &app,
           const std::string &policy)
{
    Request request;
    request.op = "run";
    request.run.client = client;
    request.run.app = app;
    request.run.policy = policy;
    request.run.numGpus = 2;
    request.run.params.numGpus = 2;
    request.run.params.footprintDivisor = 128;
    request.run.params.intensity = 0.2;
    return request;
}

/** Poll @p pred up to ~10 s; true as soon as it holds. */
bool
waitFor(const std::function<bool()> &pred)
{
    for (int waited = 0; waited < 10000; waited += 5) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

/** Execution gate: holds every worker at the door until release(). */
struct Gate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
    std::atomic<unsigned> arrivals{0};

    void wait()
    {
        arrivals.fetch_add(1);
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return open; });
    }
    void release()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            open = true;
        }
        cv.notify_all();
    }
};

// ------------------------------------------------------------ ResultStore

TEST(ResultStore, RoundTripsAndSurvivesReopen)
{
    TempPath path("store_roundtrip.jsonl");
    const harness::JournalEntry a = okEntry("aaaa000011112222", 100);
    const harness::JournalEntry b = okEntry("bbbb000011112222", 200);
    {
        ResultStore store;
        store.open(path.str());
        EXPECT_EQ(store.size(), 0u);
        EXPECT_EQ(store.find(a.fingerprint), nullptr);
        store.put(a);
        store.put(b);
        store.put(a);  // duplicate fingerprint: first record wins
        EXPECT_EQ(store.size(), 2u);
        store.close();
    }
    ResultStore store;
    store.open(path.str());
    EXPECT_EQ(store.size(), 2u);
    const harness::JournalEntry *hitA = store.find(a.fingerprint);
    const harness::JournalEntry *hitB = store.find(b.fingerprint);
    ASSERT_NE(hitA, nullptr);
    ASSERT_NE(hitB, nullptr);
    // Byte-identical round trip through the journal serialization.
    EXPECT_EQ(harness::journalLine(*hitA), harness::journalLine(a));
    EXPECT_EQ(harness::journalLine(*hitB), harness::journalLine(b));
}

TEST(ResultStore, TornTailIsDroppedAndTruncated)
{
    TempPath path("store_torn.jsonl");
    {
        ResultStore store;
        store.open(path.str());
        store.put(okEntry("aaaa000011112222", 100));
        store.put(okEntry("bbbb000011112222", 200));
    }
    std::uintmax_t intactBytes = 0;
    {
        std::ifstream in(path.str(), std::ios::ate | std::ios::binary);
        intactBytes = static_cast<std::uintmax_t>(in.tellg());
    }
    // A kill -9 mid-append leaves an unterminated record fragment.
    {
        std::ofstream out(path.str(),
                          std::ios::app | std::ios::binary);
        out << "{\"fingerprint\":\"cccc0000";
    }
    ResultStore store;
    store.open(path.str());
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.find("cccc000011112222"), nullptr);
    // The torn bytes are gone from disk, so a future append can never
    // concatenate onto them.
    std::ifstream in(path.str(), std::ios::ate | std::ios::binary);
    EXPECT_EQ(static_cast<std::uintmax_t>(in.tellg()), intactBytes);
    store.put(okEntry("dddd000011112222", 400));
    ResultStore reopened;
    reopened.open(path.str());
    EXPECT_EQ(reopened.size(), 3u);
}

TEST(ResultStore, RejectsFailuresAndPartials)
{
    TempPath path("store_reject.jsonl");
    ResultStore store;
    store.open(path.str());

    harness::JournalEntry failed = okEntry("aaaa000011112222", 100);
    failed.status = "failed";
    failed.error.emplace(sim::ErrorCode::kDeadline, "budget", "ctx");
    EXPECT_THROW(store.put(failed), sim::SimException);

    harness::JournalEntry partial = okEntry("bbbb000011112222", 200);
    partial.result.partial = true;
    EXPECT_THROW(store.put(partial), sim::SimException);

    EXPECT_EQ(store.size(), 0u);
}

TEST(ResultStore, RefusesForeignFile)
{
    TempPath path("store_foreign.jsonl");
    {
        std::ofstream out(path.str());
        out << "{\"schema\":\"something-else\",\"version\":1}\n";
    }
    ResultStore store;
    EXPECT_THROW(store.open(path.str()), sim::SimException);
}

// --------------------------------------------------------- FairShareQueue

TEST(FairShareQueue, RoundRobinAcrossClients)
{
    FairShareQueue queue(16);
    EXPECT_EQ(queue.push("c1", 1), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c1", 2), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c1", 3), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c2", 4), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c3", 5), Admission::kAdmitted);
    queue.close();  // so pop() cannot block
    // One turn per client per round — c1's backlog cannot starve
    // c2/c3 even though it was queued first.
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(1));
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(4));
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(5));
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(2));
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(3));
    EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(FairShareQueue, BoundedPushSheds)
{
    FairShareQueue queue(2);
    EXPECT_EQ(queue.push("c1", 1), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c2", 2), Admission::kAdmitted);
    EXPECT_EQ(queue.push("c3", 3), Admission::kFull);
    EXPECT_EQ(queue.size(), 2u);
    queue.close();
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(1));
    EXPECT_EQ(queue.push("c3", 3), Admission::kClosed);
}

TEST(FairShareQueue, CloseDrainsThenReportsExhaustion)
{
    FairShareQueue queue(4);
    queue.push("c1", 7);
    queue.close();
    EXPECT_TRUE(queue.closed());
    EXPECT_EQ(queue.push("c1", 8), Admission::kClosed);
    EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(7));
    EXPECT_EQ(queue.pop(), std::nullopt);
    EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(FairShareQueue, PopBlocksUntilPush)
{
    FairShareQueue queue(4);
    std::optional<std::uint64_t> got;
    std::thread consumer([&] { got = queue.pop(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(queue.push("c1", 42), Admission::kAdmitted);
    consumer.join();
    EXPECT_EQ(got, std::optional<std::uint64_t>(42));
}

// --------------------------------------------------------------- protocol

TEST(ServiceProtocol, RequestLineRoundTrips)
{
    Request request = runRequest("alice", "BFS", "grit");
    request.run.deadlineSec = 2.5;
    request.run.eventBudget = 12345;
    request.run.chaos = "hang:at=1000";
    request.run.audit = true;
    const Request back = requestFromLine(requestLine(request));
    EXPECT_EQ(back.op, "run");
    EXPECT_EQ(back.run.client, "alice");
    EXPECT_EQ(back.run.app, "BFS");
    EXPECT_EQ(back.run.policy, "grit");
    EXPECT_EQ(back.run.numGpus, 2u);
    EXPECT_EQ(back.run.params, request.run.params);
    EXPECT_EQ(back.run.deadlineSec, 2.5);
    EXPECT_EQ(back.run.eventBudget, 12345u);
    EXPECT_EQ(back.run.chaos, "hang:at=1000");
    EXPECT_TRUE(back.run.audit);
    // Re-serialization is byte-stable (wire lines are comparable).
    EXPECT_EQ(requestLine(back), requestLine(request));
}

TEST(ServiceProtocol, ResponseLineRoundTripsEntryAndError)
{
    Response ok;
    ok.status = "ok";
    ok.cached = true;
    ok.persisted = true;
    ok.entry = okEntry("aaaa000011112222", 100);
    const Response okBack = responseFromLine(responseLine(ok));
    EXPECT_EQ(okBack.status, "ok");
    EXPECT_TRUE(okBack.cached);
    EXPECT_FALSE(okBack.deduped);
    EXPECT_TRUE(okBack.persisted);
    ASSERT_TRUE(okBack.entry.has_value());
    EXPECT_EQ(harness::journalLine(*okBack.entry),
              harness::journalLine(*ok.entry));

    Response refused;
    refused.status = "error";
    refused.error = sim::SimError(sim::ErrorCode::kServiceOverloaded,
                                  "queue full", "grit-service");
    const Response errBack = responseFromLine(responseLine(refused));
    EXPECT_EQ(errBack.status, "error");
    ASSERT_TRUE(errBack.error.has_value());
    EXPECT_EQ(errBack.error->code, sim::ErrorCode::kServiceOverloaded);
    EXPECT_FALSE(errBack.persisted);

    // A line without the persisted key (a pre-flag daemon) parses
    // leniently to false rather than failing.
    const Response legacy = responseFromLine(
        "{\"schema\":\"grit-service\",\"version\":1,"
        "\"status\":\"ok\",\"cached\":true,\"deduped\":false}");
    EXPECT_TRUE(legacy.cached);
    EXPECT_FALSE(legacy.persisted);

    Response stats;
    stats.status = "ok";
    ServiceCounters counters;
    counters.requests = 9;
    counters.hits = 4;
    counters.storeEntries = 2;
    stats.service = counters;
    const Response statsBack = responseFromLine(responseLine(stats));
    ASSERT_TRUE(statsBack.service.has_value());
    EXPECT_EQ(statsBack.service->requests, 9u);
    EXPECT_EQ(statsBack.service->hits, 4u);
    EXPECT_EQ(statsBack.service->storeEntries, 2u);
}

TEST(ServiceProtocol, MalformedLinesAreStructuredErrors)
{
    const std::vector<std::string> bad = {
        "",
        "not json",
        "[1,2,3]",
        "{\"schema\":\"grit-service\",\"version\":1}",  // no op
        "{\"schema\":\"nope\",\"version\":1,\"op\":\"ping\"}",
        "{\"schema\":\"grit-service\",\"version\":99,\"op\":\"ping\"}",
        "{\"schema\":\"grit-service\",\"version\":1,\"op\":\"dance\"}",
    };
    for (const std::string &line : bad) {
        try {
            (void)requestFromLine(line);
            FAIL() << "accepted: " << line;
        } catch (const sim::SimException &e) {
            EXPECT_EQ(e.code(), sim::ErrorCode::kBadArgument) << line;
        }
    }
    EXPECT_THROW((void)responseFromLine("not json"), sim::SimException);
}

TEST(ServiceProtocol, CellFromRequestValidatesAndFingerprints)
{
    Request good = runRequest("c", "GEMM", "grit");
    const harness::RunCell cell = cellFromRequest(good.run);
    EXPECT_EQ(cell.row, "GEMM");
    EXPECT_EQ(cell.label, "grit");
    const std::string fingerprint = harness::runFingerprint(cell);
    EXPECT_EQ(fingerprint.size(), 16u);

    // Resilience knobs are not part of the content address: a cached
    // complete result satisfies any deadline.
    Request tight = good;
    tight.run.deadlineSec = 0.001;
    tight.run.eventBudget = 1;
    EXPECT_EQ(harness::runFingerprint(cellFromRequest(tight.run)),
              fingerprint);

    // Chaos IS fingerprinted — a fault-injected run is a different cell.
    Request chaotic = good;
    chaotic.run.chaos = "hang:at=1000";
    EXPECT_NE(harness::runFingerprint(cellFromRequest(chaotic.run)),
              fingerprint);

    Request badApp = runRequest("c", "NOPE", "grit");
    EXPECT_THROW((void)cellFromRequest(badApp.run), sim::SimException);
    Request badPolicy = runRequest("c", "GEMM", "not-a-policy");
    EXPECT_THROW((void)cellFromRequest(badPolicy.run), sim::SimException);
    Request badGpus = runRequest("c", "GEMM", "grit");
    badGpus.run.numGpus = 0;
    EXPECT_THROW((void)cellFromRequest(badGpus.run), sim::SimException);
}

// ---------------------------------------------------------------- backoff

TEST(Backoff, DeterministicDoublingWithCap)
{
    // Same (key, attempt) → same delay, always within
    // [nominal/2, nominal] where nominal = base * 2^(attempt-1), cap.
    for (unsigned attempt = 1; attempt <= 12; ++attempt) {
        const std::uint64_t a = backoffDelayMs("k1", attempt, 50, 2000);
        const std::uint64_t b = backoffDelayMs("k1", attempt, 50, 2000);
        EXPECT_EQ(a, b);
        std::uint64_t nominal = 50;
        for (unsigned i = 1; i < attempt && nominal < 2000; ++i)
            nominal *= 2;
        if (nominal > 2000)
            nominal = 2000;
        EXPECT_GE(a, nominal / 2) << "attempt " << attempt;
        EXPECT_LE(a, nominal) << "attempt " << attempt;
    }
    // Late attempts saturate at the cap's jitter band.
    EXPECT_LE(backoffDelayMs("k1", 40, 50, 2000), 2000u);
    EXPECT_GE(backoffDelayMs("k1", 40, 50, 2000), 1000u);
}

// ------------------------------------------------------------- the daemon

TEST(ServiceServer, ExecutesThenServesFromStore)
{
    TempPath store("server_store.jsonl");
    Server::Options options;
    options.storePath = store.str();
    options.workers = 2;
    Server server(std::move(options));
    server.start();

    const Request request = runRequest("alice", "BFS", "on-touch");
    const Response first = server.handle(request);
    ASSERT_EQ(first.status, "ok");
    EXPECT_FALSE(first.cached);
    EXPECT_FALSE(first.deduped);
    EXPECT_TRUE(first.persisted);  // appended + fsync'd before the ack
    ASSERT_TRUE(first.entry.has_value());
    EXPECT_EQ(first.entry->status, "ok");
    EXPECT_TRUE(first.entry->hasResult);
    EXPECT_GT(first.entry->result.cycles, 0u);

    const Response second = server.handle(request);
    ASSERT_EQ(second.status, "ok");
    EXPECT_TRUE(second.cached);
    EXPECT_TRUE(second.persisted);
    ASSERT_TRUE(second.entry.has_value());
    EXPECT_EQ(harness::journalLine(*second.entry),
              harness::journalLine(*first.entry));

    const ServiceCounters counters = server.counters();
    EXPECT_EQ(counters.requests, 2u);
    EXPECT_EQ(counters.hits, 1u);
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.executed, 1u);
    EXPECT_EQ(counters.failures, 0u);
    EXPECT_EQ(counters.storeEntries, 1u);
    server.stop();

    // A restarted server — as after a kill -9 — reloads the fsync'd
    // store and serves the same bytes without re-executing.
    Server::Options reopened;
    reopened.storePath = store.str();
    Server restarted(std::move(reopened));
    restarted.start();
    EXPECT_EQ(restarted.counters().storeEntries, 1u);
    const Response warm = restarted.handle(request);
    ASSERT_EQ(warm.status, "ok");
    EXPECT_TRUE(warm.cached);
    ASSERT_TRUE(warm.entry.has_value());
    EXPECT_EQ(harness::journalLine(*warm.entry),
              harness::journalLine(*first.entry));
    EXPECT_EQ(restarted.counters().executed, 0u);
    restarted.stop();
}

TEST(ServiceServer, DedupesInflightIdenticalCells)
{
    Gate gate;
    Server::Options options;
    options.workers = 2;
    options.executionGate = [&gate](const std::string &) { gate.wait(); };
    Server server(std::move(options));
    server.start();

    const Request request = runRequest("alice", "GEMM", "on-touch");
    Response first, second;
    std::thread a([&] { first = server.handle(request); });
    ASSERT_TRUE(waitFor([&] { return gate.arrivals.load() == 1; }));
    std::thread b([&] { second = server.handle(request); });
    // The second request must attach to the held execution, not queue
    // a second one.
    ASSERT_TRUE(
        waitFor([&] { return server.counters().deduped == 1; }));
    gate.release();
    a.join();
    b.join();

    EXPECT_EQ(first.status, "ok");
    EXPECT_EQ(second.status, "ok");
    EXPECT_TRUE(first.deduped != second.deduped);  // exactly one attached
    // No --store on this server: both clients must see that their
    // result is not durable anywhere.
    EXPECT_FALSE(first.persisted);
    EXPECT_FALSE(second.persisted);
    ASSERT_TRUE(first.entry.has_value());
    ASSERT_TRUE(second.entry.has_value());
    EXPECT_EQ(harness::journalLine(*first.entry),
              harness::journalLine(*second.entry));

    const ServiceCounters counters = server.counters();
    EXPECT_EQ(counters.requests, 2u);
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.deduped, 1u);
    EXPECT_EQ(counters.executed, 1u);  // the cell ran exactly once
    server.stop();
}

TEST(ServiceServer, MismatchedBudgetsDoNotShareAnExecution)
{
    Gate gate;
    Server::Options options;
    options.workers = 2;
    options.executionGate = [&gate](const std::string &) { gate.wait(); };
    Server server(std::move(options));
    server.start();

    // Same cell, different resilience constraints. The second request
    // must NOT attach to the first execution: the budget it asked for
    // would not be the one enforced, so an attached waiter could be
    // handed an outcome its own constraints would never produce.
    Request unbounded = runRequest("alice", "GEMM", "on-touch");
    Request budgeted = unbounded;
    budgeted.run.eventBudget = 50000000;  // generous: still completes

    Response first, second;
    std::thread a([&] { first = server.handle(unbounded); });
    ASSERT_TRUE(waitFor([&] { return gate.arrivals.load() == 1; }));
    std::thread b([&] { second = server.handle(budgeted); });
    // A second arrival at the gate proves a second execution started.
    ASSERT_TRUE(waitFor([&] { return gate.arrivals.load() == 2; }));
    gate.release();
    a.join();
    b.join();

    EXPECT_EQ(first.status, "ok");
    EXPECT_EQ(second.status, "ok");
    EXPECT_FALSE(first.deduped);
    EXPECT_FALSE(second.deduped);
    // The deterministic engine converges: both runs complete, so both
    // return the same bytes even though they executed separately.
    ASSERT_TRUE(first.entry.has_value());
    ASSERT_TRUE(second.entry.has_value());
    EXPECT_EQ(harness::journalLine(*first.entry),
              harness::journalLine(*second.entry));

    const ServiceCounters counters = server.counters();
    EXPECT_EQ(counters.requests, 2u);
    EXPECT_EQ(counters.misses, 2u);
    EXPECT_EQ(counters.deduped, 0u);
    EXPECT_EQ(counters.executed, 2u);
    server.stop();
}

TEST(ServiceServer, ShedsWithStructuredErrorWhenQueueFull)
{
    Gate gate;
    Server::Options options;
    options.workers = 1;
    options.queueCapacity = 1;
    options.executionGate = [&gate](const std::string &) { gate.wait(); };
    Server server(std::move(options));
    server.start();

    // First cell occupies the only worker (held at the gate); second
    // fills the queue; the third must be shed, not hung.
    Response first, second;
    std::thread a(
        [&] { first = server.handle(runRequest("a", "BFS", "on-touch")); });
    ASSERT_TRUE(waitFor([&] { return gate.arrivals.load() == 1; }));
    std::thread b(
        [&] { second = server.handle(runRequest("b", "BFS", "grit")); });
    ASSERT_TRUE(waitFor([&] { return server.counters().misses == 2; }));

    const Response shed = server.handle(runRequest("c", "GEMM", "grit"));
    EXPECT_EQ(shed.status, "error");
    ASSERT_TRUE(shed.error.has_value());
    EXPECT_EQ(shed.error->code, sim::ErrorCode::kServiceOverloaded);
    EXPECT_EQ(server.counters().rejectedOverload, 1u);

    gate.release();
    a.join();
    b.join();
    EXPECT_EQ(first.status, "ok");
    EXPECT_EQ(second.status, "ok");
    server.stop();
}

TEST(ServiceServer, DrainingRefusesMissesButServesStoreHits)
{
    TempPath store("server_drain.jsonl");
    Server::Options options;
    options.storePath = store.str();
    Server server(std::move(options));
    server.start();

    const Request cached = runRequest("alice", "BFS", "on-touch");
    const Response executed = server.handle(cached);
    ASSERT_EQ(executed.status, "ok");

    server.beginDrain();
    EXPECT_TRUE(server.draining());

    // A stored result costs no execution, so drain still serves it.
    const Response hit = server.handle(cached);
    EXPECT_EQ(hit.status, "ok");
    EXPECT_TRUE(hit.cached);

    const Response refused =
        server.handle(runRequest("alice", "GEMM", "grit"));
    EXPECT_EQ(refused.status, "error");
    ASSERT_TRUE(refused.error.has_value());
    EXPECT_EQ(refused.error->code, sim::ErrorCode::kServiceDraining);
    EXPECT_EQ(server.counters().rejectedDraining, 1u);
    server.stop();
}

TEST(ServiceServer, DeadlineFailureSalvagesPartialAndIsNotCached)
{
    TempPath store("server_deadline.jsonl");
    Server::Options options;
    options.storePath = store.str();
    Server server(std::move(options));
    server.start();

    // A livelocked cell under an event budget: the watchdog quarantines
    // it as kDeadline with salvaged partial counters (grit-results v2).
    // The budget must undercut the engine's own safety valve
    // (16 * (accesses + 1024)) so it is the binding limit.
    Request hung = runRequest("alice", "GEMM", "on-touch");
    hung.run.chaos = "hang:at=1000";
    hung.run.eventBudget = 10000;
    const Response response = server.handle(hung);
    EXPECT_EQ(response.status, "failed");
    ASSERT_TRUE(response.entry.has_value());
    EXPECT_EQ(response.entry->status, "failed");
    ASSERT_TRUE(response.entry->error.has_value());
    EXPECT_EQ(response.entry->error->code, sim::ErrorCode::kDeadline);
    EXPECT_TRUE(response.entry->hasResult);
    EXPECT_TRUE(response.entry->result.partial);

    // Failures must never poison the cache: re-requesting re-executes.
    const ServiceCounters counters = server.counters();
    EXPECT_EQ(counters.failures, 1u);
    EXPECT_EQ(counters.storeEntries, 0u);
    const Response again = server.handle(hung);
    EXPECT_EQ(again.status, "failed");
    EXPECT_FALSE(again.cached);
    EXPECT_EQ(server.counters().executed, 2u);
    server.stop();
}

TEST(ServiceServer, ResultsInvariantUnderWorkerCount)
{
    const std::vector<std::pair<std::string, std::string>> cells = {
        {"BFS", "on-touch"},
        {"BFS", "grit"},
        {"GEMM", "on-touch"},
        {"GEMM", "grit"},
    };
    // Execute the same four cells on a 1-worker and a 4-worker server;
    // every entry must serialize byte-identically.
    std::map<std::string, std::string> lines1, lines4;
    for (const unsigned workers : {1u, 4u}) {
        Server::Options options;
        options.workers = workers;
        Server server(std::move(options));
        server.start();
        std::vector<Response> responses(cells.size());
        std::vector<std::thread> threads;
        for (std::size_t i = 0; i < cells.size(); ++i)
            threads.emplace_back([&, i] {
                responses[i] = server.handle(runRequest(
                    "c" + std::to_string(i), cells[i].first,
                    cells[i].second));
            });
        for (std::thread &t : threads)
            t.join();
        auto &lines = workers == 1 ? lines1 : lines4;
        for (const Response &response : responses) {
            ASSERT_EQ(response.status, "ok");
            ASSERT_TRUE(response.entry.has_value());
            lines[response.entry->fingerprint] =
                harness::journalLine(*response.entry);
        }
        server.stop();
    }
    EXPECT_EQ(lines1.size(), cells.size());
    EXPECT_EQ(lines1, lines4);
}

TEST(ServiceServer, SocketRoundTripWithClient)
{
    TempPath socket("svc_test.sock");
    TempPath store("svc_test_store.jsonl");
    Server::Options options;
    options.socketPath = socket.str();
    options.storePath = store.str();
    options.workers = 2;
    Server server(std::move(options));
    server.start();

    Client::Options clientOptions;
    clientOptions.socketPath = socket.str();
    Client client(clientOptions);

    Request ping;
    ping.op = "ping";
    EXPECT_EQ(client.submit(ping).status, "ok");

    const Response run =
        client.submit(runRequest("alice", "BFS", "on-touch"));
    ASSERT_EQ(run.status, "ok");
    ASSERT_TRUE(run.entry.has_value());
    EXPECT_TRUE(run.entry->hasResult);

    Request stats;
    stats.op = "stats";
    const Response counters = client.submit(stats);
    ASSERT_TRUE(counters.service.has_value());
    EXPECT_EQ(counters.service->requests, 1u);
    EXPECT_EQ(counters.service->executed, 1u);
    EXPECT_EQ(counters.service->storeEntries, 1u);
    server.stop();

    // With the daemon gone, the client fails structurally, fast.
    Client::Options deadOptions;
    deadOptions.socketPath = socket.str();
    deadOptions.retries = 1;
    deadOptions.backoffBaseMs = 1;
    Client dead(deadOptions);
    try {
        (void)dead.submit(ping);
        FAIL() << "submit to a stopped daemon succeeded";
    } catch (const sim::SimException &e) {
        EXPECT_EQ(e.code(), sim::ErrorCode::kInternal);
    }
}

}  // namespace
}  // namespace grit::service
