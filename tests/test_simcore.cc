/** @file Unit tests for the simulation core: event queue, RNG, resources. */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "simcore/event_queue.h"
#include "simcore/resource.h"
#include "simcore/rng.h"

namespace grit::sim {
namespace {

// ---------------------------------------------------------------- EventQueue

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(42, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, SchedulingInThePastThrowsStructuredError)
{
    EventQueue q;
    bool threw = false;
    q.schedule(100, [&] {
        try {
            q.schedule(5, [] {}, "stale");  // in the past
        } catch (const SimException &e) {
            threw = true;
            EXPECT_EQ(e.code(), ErrorCode::kScheduleInPast);
            EXPECT_NE(e.error().message.find("stale"),
                      std::string::npos);
        }
    });
    q.run();
    EXPECT_TRUE(threw);
}

/** Self-rescheduling callable: trivially copyable, as EventFn requires. */
struct Chain
{
    EventQueue *q;
    int *fired;
    int limit;
    Cycle step;
    void operator()() const
    {
        if (++*fired < limit)
            q->scheduleAfter(step, *this, "chain");
    }
};

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(0, Chain{&q, &fired, 5, 10});
    q.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [] {});
    EXPECT_EQ(q.run(4), 4u);
    EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, RunReportsLimitTrip)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [] {});
    q.run(4);
    EXPECT_TRUE(q.limitHit());  // stopped with work pending
    q.run();
    EXPECT_FALSE(q.limitHit());  // drained cleanly
    q.schedule(50, [] {});
    q.reset();
    EXPECT_FALSE(q.limitHit());
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] { ++count; });
    q.schedule(2, [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    q.schedule(20, [] {});
    q.reset();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueue, LimitTripRecordsDiagnosticNamingOldestTag)
{
    EventQueue q;
    for (int i = 0; i < 4; ++i)
        q.schedule(static_cast<Cycle>(i), [] {}, "early");
    q.schedule(90, [] {}, "lane-step");
    q.schedule(99, [] {}, "fault-replay");
    q.run(5);  // stops with "fault-replay" still pending
    ASSERT_TRUE(q.limitHit());
    ASSERT_TRUE(q.diagnostic().has_value());
    EXPECT_EQ(q.diagnostic()->code, ErrorCode::kEventLimit);
    EXPECT_NE(q.diagnostic()->message.find("fault-replay"),
              std::string::npos);
    EXPECT_NE(q.diagnostic()->message.find("limit (5)"),
              std::string::npos);
}

TEST(EventQueue, CleanDrainLeavesNoDiagnostic)
{
    EventQueue q;
    q.schedule(1, [] {}, "only");
    q.run();
    EXPECT_FALSE(q.limitHit());
    EXPECT_FALSE(q.stalled());
    EXPECT_FALSE(q.diagnostic().has_value());
}

TEST(EventQueue, CancelCheckStopsCooperativelyBetweenEvents)
{
    EventQueue q;
    int executed = 0;
    struct Forever
    {
        EventQueue *q;
        int *executed;
        void operator()() const
        {
            ++*executed;
            q->schedule(q->now() + 1, *this, "chain");
        }
    };
    q.schedule(0, Forever{&q, &executed}, "chain");
    // Poll every event; trip after the third execution. No event is
    // interrupted mid-flight, so executed stays exactly at the trip.
    q.setCancelCheck(
        [&]() -> std::optional<SimError> {
            if (executed >= 3)
                return SimError(ErrorCode::kDeadline, "deadline reached");
            return std::nullopt;
        },
        /*interval_events=*/1);
    q.run();
    EXPECT_TRUE(q.cancelled());
    EXPECT_FALSE(q.limitHit());
    EXPECT_EQ(executed, 3);
    ASSERT_TRUE(q.diagnostic().has_value());
    EXPECT_EQ(q.diagnostic()->code, ErrorCode::kDeadline);
}

TEST(EventQueue, CancelCheckPolledBeforeFirstEvent)
{
    EventQueue q;
    bool ran = false;
    q.schedule(1, [&] { ran = true; }, "never");
    q.setCancelCheck([]() -> std::optional<SimError> {
        return SimError(ErrorCode::kInterrupted, "signal 2");
    });
    q.run();
    EXPECT_TRUE(q.cancelled());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, EmptyCancelCheckIsInert)
{
    EventQueue q;
    q.setCancelCheck({});
    q.schedule(1, [] {}, "only");
    q.run();
    EXPECT_FALSE(q.cancelled());
    EXPECT_FALSE(q.diagnostic().has_value());
}

/** Reschedules itself at a fixed cycle forever (time never advances). */
struct Storm
{
    EventQueue *q;
    Cycle at;
    void operator()() const { q->schedule(at, *this, "storm"); }
};

TEST(EventQueue, WatchdogTripsOnSameCycleStorm)
{
    EventQueue q;
    q.setWatchdog(100);
    q.schedule(7, Storm{&q, 7}, "storm");
    q.run();
    ASSERT_TRUE(q.stalled());
    EXPECT_FALSE(q.limitHit());
    ASSERT_TRUE(q.diagnostic().has_value());
    EXPECT_EQ(q.diagnostic()->code, ErrorCode::kNoProgress);
    EXPECT_NE(q.diagnostic()->message.find("storm"), std::string::npos);
    EXPECT_NE(q.diagnostic()->message.find("cycle 7"), std::string::npos);
}

TEST(EventQueue, WatchdogTolerantOfAdvancingTime)
{
    EventQueue q;
    q.setWatchdog(4);
    int fired = 0;
    q.schedule(0, Chain{&q, &fired, 100, 1}, "chain");
    q.run();
    EXPECT_EQ(fired, 100);
    EXPECT_FALSE(q.stalled());
    EXPECT_FALSE(q.diagnostic().has_value());
}

TEST(EventQueue, ResetClearsDiagnosticState)
{
    EventQueue q;
    q.setWatchdog(10);
    q.schedule(3, Storm{&q, 3}, "storm");
    q.run();
    ASSERT_TRUE(q.stalled());
    q.reset();
    EXPECT_FALSE(q.stalled());
    EXPECT_FALSE(q.diagnostic().has_value());
    q.schedule(1, [] {});
    q.run();
    EXPECT_FALSE(q.diagnostic().has_value());
}

TEST(EventQueue, NextTagReportsOldestPending)
{
    EventQueue q;
    EXPECT_EQ(q.nextTag(), nullptr);
    q.schedule(5, [] {}, "later");
    q.schedule(1, [] {}, "sooner");
    EXPECT_STREQ(q.nextTag(), "sooner");
}

TEST(EventQueue, NextWhenReportsOldestTimestamp)
{
    EventQueue q;
    EXPECT_EQ(q.nextWhen(), 0u);
    q.schedule(9, [] {});
    q.schedule(4, [] {});
    EXPECT_EQ(q.nextWhen(), 4u);
}

// Events far beyond the calendar's near window (kWindow cycles) park in
// the overflow heap and migrate into buckets as the window advances;
// order and tie-breaking must be indistinguishable from a flat heap.

TEST(EventQueue, FarFutureEventsExecuteInOrder)
{
    EventQueue q;
    std::vector<Cycle> order;
    const Cycle far = 10 * EventQueue::kWindow;
    q.schedule(far + 3, [&] { order.push_back(q.now()); });
    q.schedule(2, [&] { order.push_back(q.now()); });
    q.schedule(far, [&] { order.push_back(q.now()); });
    q.schedule(3 * far, [&] { order.push_back(q.now()); });
    q.run();
    EXPECT_EQ(order, (std::vector<Cycle>{2, far, far + 3, 3 * far}));
    EXPECT_EQ(q.now(), 3 * far);
}

TEST(EventQueue, TiesBreakByInsertionOrderAcrossTheWindowBoundary)
{
    EventQueue q;
    std::vector<int> order;
    const Cycle when = 2 * EventQueue::kWindow + 5;  // starts far
    for (int i = 0; i < 6; ++i)
        q.schedule(when, [&order, i] { order.push_back(i); });
    // Drag the window forward so some duplicates migrate from the far
    // heap while later ones are scheduled directly into the bucket.
    q.schedule(EventQueue::kWindow + 1, [&] {
        q.schedule(when, [&order] { order.push_back(6); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(EventQueue, SparseTimestampsSkipEmptyBuckets)
{
    EventQueue q;
    int fired = 0;
    for (Cycle c : {Cycle{1}, Cycle{4095}, Cycle{4096}, Cycle{81920},
                    Cycle{1000000}})
        q.schedule(c, [&] { ++fired; });
    EXPECT_EQ(q.run(), 5u);
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.now(), 1000000u);
}

TEST(EventQueue, StressMatchesReferenceHeapOrdering)
{
    // Pseudo-random schedule pattern executed once through the calendar
    // queue and once through a reference (when, seq) sort; the two must
    // agree exactly — this is the determinism contract.
    EventQueue q;
    std::vector<std::pair<Cycle, int>> executed;
    std::vector<std::pair<Cycle, int>> expected;
    Rng rng(2024);
    int id = 0;
    for (int i = 0; i < 500; ++i) {
        const Cycle when = rng.below(3 * EventQueue::kWindow);
        expected.emplace_back(when, id);
        q.schedule(when, [&executed, &q, id] {
            executed.emplace_back(q.now(), id);
        });
        ++id;
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    q.run();
    EXPECT_EQ(executed, expected);
}

// ----------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 100; ++i)
        differing += a.next() != b.next() ? 1 : 0;
    EXPECT_GT(differing, 90);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000003ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng rng(17);
    int buckets[4] = {0, 0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        buckets[rng.below(4)] += 1;
    for (int b : buckets)
        EXPECT_NEAR(b, 2000, 250);
}

// ---------------------------------------------------------- BandwidthResource

TEST(BandwidthResource, ServiceCyclesRoundUp)
{
    BandwidthResource pipe("p", 32.0);
    EXPECT_EQ(pipe.serviceCycles(0), 0u);
    EXPECT_EQ(pipe.serviceCycles(1), 1u);
    EXPECT_EQ(pipe.serviceCycles(32), 1u);
    EXPECT_EQ(pipe.serviceCycles(33), 2u);
    EXPECT_EQ(pipe.serviceCycles(4096), 128u);
}

TEST(BandwidthResource, SingleTransferCompletesAfterService)
{
    BandwidthResource pipe("p", 1.0, 1);
    EXPECT_EQ(pipe.acquire(100, 50), 150u);
    EXPECT_EQ(pipe.busyCycles(), 50u);
    EXPECT_EQ(pipe.bytesMoved(), 50u);
}

TEST(BandwidthResource, SingleChannelSerializes)
{
    BandwidthResource pipe("p", 1.0, 1);
    EXPECT_EQ(pipe.acquire(0, 10), 10u);
    EXPECT_EQ(pipe.acquire(0, 10), 20u);  // queues behind the first
}

TEST(BandwidthResource, ChannelsAbsorbTimestampSkew)
{
    BandwidthResource pipe("p", 1.0, 4);
    // A future-timestamped transfer must not delay a present one.
    pipe.acquire(1000, 10);
    EXPECT_EQ(pipe.acquire(0, 10), 10u);
}

TEST(BandwidthResource, SaturationQueuesAcrossChannels)
{
    BandwidthResource pipe("p", 1.0, 2);
    EXPECT_EQ(pipe.acquire(0, 10), 10u);
    EXPECT_EQ(pipe.acquire(0, 10), 10u);
    EXPECT_EQ(pipe.acquire(0, 10), 20u);  // both channels busy
}

TEST(BandwidthResource, ResetClearsState)
{
    BandwidthResource pipe("p", 1.0, 1);
    pipe.acquire(0, 100);
    pipe.reset();
    EXPECT_EQ(pipe.busyCycles(), 0u);
    EXPECT_EQ(pipe.bytesMoved(), 0u);
    EXPECT_EQ(pipe.acquire(0, 10), 10u);
}

// ------------------------------------------------------------------ ServerPool

TEST(ServerPool, ParallelUpToServerCount)
{
    ServerPool pool("s", 3);
    EXPECT_EQ(pool.acquire(0, 100), 100u);
    EXPECT_EQ(pool.acquire(0, 100), 100u);
    EXPECT_EQ(pool.acquire(0, 100), 100u);
    EXPECT_EQ(pool.acquire(0, 100), 200u);  // fourth queues
    EXPECT_EQ(pool.requests(), 4u);
    EXPECT_EQ(pool.busyCycles(), 400u);
    EXPECT_EQ(pool.queueDelay(), 100u);
}

TEST(ServerPool, LaterArrivalStartsImmediately)
{
    ServerPool pool("s", 1);
    pool.acquire(0, 10);
    EXPECT_EQ(pool.acquire(50, 10), 60u);
    EXPECT_EQ(pool.queueDelay(), 0u);
}

TEST(ServerPool, ResetClearsState)
{
    ServerPool pool("s", 1);
    pool.acquire(0, 1000);
    pool.reset();
    EXPECT_EQ(pool.acquire(0, 10), 10u);
    EXPECT_EQ(pool.requests(), 1u);
}

/** Property sweep: a pool of N servers with per-request service S must
 *  finish K simultaneous requests at ceil(K/N)*S. */
class ServerPoolThroughput
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(ServerPoolThroughput, BatchCompletesAtExpectedTime)
{
    const auto [servers, requests] = GetParam();
    ServerPool pool("s", servers);
    Cycle last = 0;
    for (unsigned i = 0; i < requests; ++i)
        last = std::max(last, pool.acquire(0, 100));
    const Cycle waves = (requests + servers - 1) / servers;
    EXPECT_EQ(last, waves * 100);
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ServerPoolThroughput,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1u, 3u, 8u, 17u)));

}  // namespace
}  // namespace grit::sim
