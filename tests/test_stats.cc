/** @file Unit tests for counters, latency breakdown, interval sampler,
 *  and summary helpers. */

#include <gtest/gtest.h>

#include "stats/counters.h"
#include "stats/interval_sampler.h"
#include "stats/latency_breakdown.h"
#include "stats/summary.h"

namespace grit::stats {
namespace {

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatSet, CreatesOnFirstUse)
{
    StatSet s;
    EXPECT_EQ(s.get("missing"), 0u);
    s.counter("a").inc(3);
    EXPECT_EQ(s.get("a"), 3u);
}

TEST(StatSet, ItemsSortedByName)
{
    StatSet s;
    s.counter("zeta").inc(1);
    s.counter("alpha").inc(2);
    s.counter("mid").inc(3);
    const auto items = s.items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].first, "alpha");
    EXPECT_EQ(items[1].first, "mid");
    EXPECT_EQ(items[2].first, "zeta");
}

TEST(StatSet, ResetZeroesAllCounters)
{
    StatSet s;
    s.counter("x").inc(10);
    s.reset();
    EXPECT_EQ(s.get("x"), 0u);
}

TEST(LatencyBreakdown, SixCategoriesWithPaperNames)
{
    EXPECT_STREQ(latencyKindName(LatencyKind::kLocal), "Local");
    EXPECT_STREQ(latencyKindName(LatencyKind::kHost), "Host");
    EXPECT_STREQ(latencyKindName(LatencyKind::kPageMigration),
                 "Page-migration");
    EXPECT_STREQ(latencyKindName(LatencyKind::kRemoteAccess),
                 "Remote-access");
    EXPECT_STREQ(latencyKindName(LatencyKind::kPageDuplication),
                 "Page-duplication");
    EXPECT_STREQ(latencyKindName(LatencyKind::kWriteCollapse),
                 "Write-collapse");
    EXPECT_EQ(kLatencyKinds, 6u);
}

TEST(LatencyBreakdown, AccumulatesAndTotals)
{
    LatencyBreakdown b;
    b.add(LatencyKind::kLocal, 10);
    b.add(LatencyKind::kLocal, 5);
    b.add(LatencyKind::kWriteCollapse, 25);
    EXPECT_EQ(b.get(LatencyKind::kLocal), 15u);
    EXPECT_EQ(b.total(), 40u);
    EXPECT_DOUBLE_EQ(b.fraction(LatencyKind::kLocal), 15.0 / 40.0);
}

TEST(LatencyBreakdown, EmptyFractionIsZero)
{
    LatencyBreakdown b;
    EXPECT_DOUBLE_EQ(b.fraction(LatencyKind::kHost), 0.0);
    b.add(LatencyKind::kHost, 7);
    b.reset();
    EXPECT_EQ(b.total(), 0u);
}

TEST(IntervalSampler, BucketsObservationsByTime)
{
    IntervalSampler s(100, 2);
    s.record(0, 0);
    s.record(99, 0);
    s.record(100, 1);
    s.record(250, 0, 5);
    EXPECT_EQ(s.get(0, 0), 2u);
    EXPECT_EQ(s.get(1, 1), 1u);
    EXPECT_EQ(s.get(2, 0), 5u);
    EXPECT_EQ(s.intervals(), 3u);
}

TEST(IntervalSampler, TotalsAndFractions)
{
    IntervalSampler s(10, 2);
    s.record(5, 0, 3);
    s.record(5, 1, 1);
    EXPECT_EQ(s.intervalTotal(0), 4u);
    EXPECT_DOUBLE_EQ(s.fraction(0, 0), 0.75);
    EXPECT_DOUBLE_EQ(s.fraction(7, 0), 0.0);  // untouched interval
}

TEST(IntervalSampler, OutOfRangeReadsAreZero)
{
    IntervalSampler s(10, 2);
    EXPECT_EQ(s.get(5, 0), 0u);
    EXPECT_EQ(s.get(0, 9), 0u);
}

TEST(Summary, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Summary, Speedup)
{
    EXPECT_DOUBLE_EQ(speedup(200.0, 100.0), 2.0);
    EXPECT_DOUBLE_EQ(speedup(100.0, 200.0), 0.5);
}

}  // namespace
}  // namespace grit::stats
