/** @file Tests for the observability layer: JsonWriter escaping and
 *  number formatting, TraceRecorder ring-buffer semantics and Chrome
 *  trace export, ResultSink schema layout, and the end-to-end guarantee
 *  that a "grit-results" document is byte-identical for any worker
 *  count. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/experiment_engine.h"
#include "harness/results_io.h"
#include "simcore/trace_recorder.h"
#include "stats/json_writer.h"
#include "stats/result_sink.h"
#include "stats/timeline.h"

namespace grit {
namespace {

// ------------------------------------------------------------ JsonWriter

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(stats::JsonWriter::escaped("plain"), "plain");
    EXPECT_EQ(stats::JsonWriter::escaped("a\"b"), "a\\\"b");
    EXPECT_EQ(stats::JsonWriter::escaped("a\\b"), "a\\\\b");
    EXPECT_EQ(stats::JsonWriter::escaped("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(stats::JsonWriter::escaped(std::string("a\x01z")),
              "a\\u0001z");
    EXPECT_EQ(stats::JsonWriter::escaped("\b\f\r"), "\\b\\f\\r");
}

TEST(JsonWriter, FormatsNumbersDeterministically)
{
    EXPECT_EQ(stats::JsonWriter::number(0.0), "0");
    EXPECT_EQ(stats::JsonWriter::number(0.5), "0.5");
    EXPECT_EQ(stats::JsonWriter::number(-3.25), "-3.25");
    // Shortest round-trip form, never locale-dependent.
    EXPECT_EQ(stats::JsonWriter::number(0.1), "0.1");
    // Non-finite values are not valid JSON numbers.
    EXPECT_EQ(stats::JsonWriter::number(
                  std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(stats::JsonWriter::number(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
}

TEST(JsonWriter, WritesNestedStructures)
{
    std::ostringstream os;
    {
        stats::JsonWriter json(os);
        json.beginObject();
        json.key("a").value(std::uint64_t{1});
        json.key("b").beginArray();
        json.value("x");
        json.value(true);
        json.endArray();
        json.key("c").beginObject();
        json.key("d").value(2.5);
        json.endObject();
        json.endObject();
    }
    EXPECT_EQ(os.str(), R"({"a":1,"b":["x",true],"c":{"d":2.5}})");
}

/** Regression: non-finite doubles must surface as `null` inside a full
 *  document, not just through the number() helper — a NaN metric (e.g.
 *  a 0/0 rate) must never produce invalid JSON. */
TEST(JsonWriter, NonFiniteValuesEmitNullInsideDocuments)
{
    std::ostringstream os;
    {
        stats::JsonWriter json(os);
        json.beginObject();
        json.key("nan").value(std::numeric_limits<double>::quiet_NaN());
        json.key("inf").value(std::numeric_limits<double>::infinity());
        json.key("ninf").value(-std::numeric_limits<double>::infinity());
        json.key("ok").value(1.5);
        json.endObject();
    }
    EXPECT_EQ(os.str(),
              R"({"nan":null,"inf":null,"ninf":null,"ok":1.5})");
}

TEST(ResultSink, NonFiniteScalarsEmitNull)
{
    std::ostringstream os;
    stats::ResultSink sink(os);
    sink.begin("gen", "t");
    sink.beginRuns();
    sink.beginRun("APP", "policy");
    sink.scalar("rate", std::numeric_limits<double>::quiet_NaN());
    sink.endRun();
    sink.endRuns();
    sink.end();
    EXPECT_NE(os.str().find(R"("rate":null)"), std::string::npos);
}

// --------------------------------------------------------- TraceRecorder

TEST(TraceRecorder, RetainsEverythingBelowCapacity)
{
    sim::TraceRecorder trace(8);
    trace.record("fault", "uvm", 10, 5, 0, 42);
    trace.record("migrate", "uvm", 20, 7, 1, 43, 0);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.dropped(), 0u);
    EXPECT_STREQ(trace.at(0).name, "fault");
    EXPECT_EQ(trace.at(1).ts, 20u);
    EXPECT_EQ(trace.at(1).peer, 0);
}

TEST(TraceRecorder, OverwritesOldestWhenFull)
{
    sim::TraceRecorder trace(4);
    for (std::uint64_t i = 0; i < 6; ++i)
        trace.record("e", "t", i, 0, 0, i);
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.recorded(), 6u);
    EXPECT_EQ(trace.dropped(), 2u);
    // Oldest retained first: events 2, 3, 4, 5.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(trace.at(i).arg, i + 2);
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceRecorder, WritesLoadableChromeTrace)
{
    sim::TraceRecorder trace(16);
    trace.record("fault", "uvm", 1500, 300, 2, 7);
    trace.record("evict", "uvm", 2000, 0, sim::kHostId, 9);
    std::ostringstream os;
    trace.writeChromeTrace(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    // Complete event with microsecond timestamps (1500 cycles = 1.5 us).
    EXPECT_NE(doc.find("\"ph\":\"X\",\"ts\":1.500,\"dur\":0.300"),
              std::string::npos);
    // Instant event on the driver track.
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"uvm-driver\""), std::string::npos);
}

// ------------------------------------------------------------ ResultSink

TEST(ResultSink, WritesVersionedEnvelope)
{
    std::ostringstream os;
    stats::ResultSink sink(os);
    sink.begin("test_gen", "a title");
    sink.writeParams(256, 0.5, 42);
    sink.beginRuns();
    sink.beginRun("BFS", "grit");
    sink.scalar("cycles", std::uint64_t{100});
    sink.endRun();
    sink.endRuns();
    sink.end();
    EXPECT_EQ(os.str(),
              R"({"schema":"grit-results","version":2,)"
              R"("generator":"test_gen","title":"a title",)"
              R"("params":{"footprint_divisor":256,"intensity":0.5,)"
              R"("seed":42},"runs":[{"row":"BFS","label":"grit",)"
              R"("cycles":100}]})");
}

TEST(ResultSink, TimelineKeyNamesMatchKinds)
{
    const auto names = stats::timelineKeyNames();
    ASSERT_EQ(names.size(), stats::kTimelineKinds);
    EXPECT_STREQ(names[0], "fault");
    EXPECT_STREQ(names[static_cast<unsigned>(
                     stats::TimelineKind::kRemoteAccess)],
                 "remote_access");
}

// ----------------------------------------------- end-to-end determinism

/** Serialize @p matrix exactly as `--json` does. */
std::string
serialize(const harness::ResultMatrix &matrix,
          const workload::WorkloadParams &params)
{
    std::ostringstream os;
    harness::writeResultMatrix(os, "test", "determinism", params, matrix);
    return os.str();
}

TEST(StatsExport, DocumentIsIdenticalForAnyWorkerCount)
{
    workload::WorkloadParams params;
    params.footprintDivisor = 512;
    params.intensity = 0.1;

    const std::vector<workload::AppId> apps = {workload::AppId::kBfs,
                                               workload::AppId::kFir};
    const std::vector<harness::LabeledConfig> configs = {
        {"on-touch",
         harness::makeConfig(harness::PolicyKind::kOnTouch, 4)},
        {"grit", harness::makeConfig(harness::PolicyKind::kGrit, 4)},
    };

    harness::ExperimentEngine::Options serial;
    serial.jobs = 1;
    harness::ExperimentEngine::Options wide;
    wide.jobs = 4;

    const auto plan = harness::RunPlan::matrix(apps, configs, params);
    const std::string doc1 =
        serialize(harness::ExperimentEngine(serial).run(plan), params);
    const std::string doc4 =
        serialize(harness::ExperimentEngine(wide).run(plan), params);

    EXPECT_FALSE(doc1.empty());
    EXPECT_EQ(doc1, doc4);
    // Spot-check the fixed schema fields made it into the document.
    for (const char *key :
         {"\"schema\":\"grit-results\"", "\"latency_breakdown\"",
          "\"scheme_accesses\"", "\"counters\"", "\"total_faults\""})
        EXPECT_NE(doc1.find(key), std::string::npos) << key;
}

TEST(StatsExport, TimelineCountsFaultsWhenSampling)
{
    workload::WorkloadParams params;
    params.footprintDivisor = 512;
    params.intensity = 0.1;
    harness::SystemConfig config =
        harness::makeConfig(harness::PolicyKind::kOnTouch, 4);
    config.timelineIntervalCycles = 100'000;

    const harness::RunResult r =
        harness::runApp(workload::AppId::kBfs, config, params);
    ASSERT_TRUE(r.timeline.has_value());
    std::uint64_t faults = 0;
    for (std::size_t i = 0; i < r.timeline->intervals(); ++i)
        faults += r.timeline->get(
            i, static_cast<unsigned>(stats::TimelineKind::kFault));
    EXPECT_EQ(faults, r.totalFaults());
}

TEST(StatsExport, TraceCapturesPageLifecycle)
{
    workload::WorkloadParams params;
    params.footprintDivisor = 512;
    params.intensity = 0.1;
    sim::TraceRecorder trace;
    harness::SystemConfig config =
        harness::makeConfig(harness::PolicyKind::kOnTouch, 4);
    config.trace = &trace;

    const harness::RunResult r =
        harness::runApp(workload::AppId::kBfs, config, params);
    EXPECT_GT(trace.size(), 0u);
    // Every fault episode the run serviced appears in the trace.
    std::uint64_t fault_events = 0;
    for (std::size_t i = 0; i < trace.size(); ++i)
        if (std::string_view(trace.at(i).name) == "fault")
            ++fault_events;
    EXPECT_EQ(fault_events, r.totalFaults());
}

}  // namespace
}  // namespace grit
