/** @file Tests for streaming trace generation (workload/trace_stream.h):
 *  chunked streams must reproduce materialized traces byte for byte at
 *  any chunk size, replay deterministically from any chunk boundary,
 *  stay bounded under the chunk LRU's byte budget, and drive the
 *  simulator to bit-identical results — with access batching on or
 *  off. */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/config.h"
#include "harness/simulator.h"
#include "workload/apps.h"
#include "workload/dnn.h"
#include "workload/generators.h"
#include "workload/trace_cache.h"
#include "workload/trace_stream.h"

namespace grit::workload {
namespace {

/** Small, fast parameters shared by every test in this file. */
WorkloadParams
smallParams()
{
    WorkloadParams params;
    params.numGpus = 4;
    params.footprintDivisor = 128;
    params.intensity = 0.2;
    return params;
}

/** Drain @p stream fully and return the flattened access sequence. */
GpuTrace
drain(TraceStream &stream)
{
    GpuTrace all;
    while (ChunkHandle chunk = stream.next()) {
        all.insert(all.end(), chunk->accesses.begin(),
                   chunk->accesses.end());
    }
    return all;
}

void
expectSameTrace(const GpuTrace &a, const GpuTrace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].addr, b[i].addr) << "access " << i;
        ASSERT_EQ(a[i].write, b[i].write) << "access " << i;
    }
}

// ------------------------------------------------- generated streams

TEST(GeneratedTraceStream, MatchesMaterializedAtAnyChunkSize)
{
    const WorkloadParams params = smallParams();
    const Workload w = makeWorkload(AppId::kGemm, params);
    for (const std::uint64_t chunk_accesses :
         {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{1} << 20}) {
        for (unsigned g = 0; g < params.numGpus; ++g) {
            GeneratedTraceStream stream(
                [params](TraceSink &sink) {
                    generateTrace(AppId::kGemm, params, sink);
                },
                g, chunk_accesses);
            expectSameTrace(drain(stream), w.traces[g]);
        }
    }
}

TEST(GeneratedTraceStream, ChunksAreFramedAndIndexed)
{
    const WorkloadParams params = smallParams();
    const Workload w = makeWorkload(AppId::kFir, params);
    GeneratedTraceStream stream(
        [params](TraceSink &sink) {
            generateTrace(AppId::kFir, params, sink);
        },
        0, 100);
    std::uint64_t index = 0;
    std::uint64_t seen = 0;
    while (ChunkHandle chunk = stream.next()) {
        EXPECT_EQ(chunk->index, index);
        EXPECT_EQ(chunk->firstAccess, index * 100);
        if (seen + chunk->accesses.size() < w.traces[0].size())
            EXPECT_EQ(chunk->accesses.size(), 100u);  // only last is short
        seen += chunk->accesses.size();
        ++index;
    }
    EXPECT_EQ(seen, w.traces[0].size());
}

TEST(GeneratedTraceStream, SeekReplaysFromAnyChunkBoundary)
{
    const WorkloadParams params = smallParams();
    auto gen = [params](TraceSink &sink) {
        generateTrace(AppId::kBfs, params, sink);
    };
    GeneratedTraceStream stream(gen, 1, 64);

    std::vector<ChunkHandle> first_pass;
    for (unsigned i = 0; i < 6; ++i) {
        ChunkHandle chunk = stream.next();
        ASSERT_NE(chunk, nullptr);
        first_pass.push_back(chunk);
    }

    // Backward seek regenerates; forward seek skips.
    stream.seek(2);
    for (unsigned i = 2; i < 6; ++i) {
        ChunkHandle replay = stream.next();
        ASSERT_NE(replay, nullptr);
        expectSameTrace(replay->accesses, first_pass[i]->accesses);
    }
    stream.seek(5);
    ChunkHandle skipped_to = stream.next();
    ASSERT_NE(skipped_to, nullptr);
    expectSameTrace(skipped_to->accesses, first_pass[5]->accesses);

    // A fresh stream starting mid-trace agrees too.
    GeneratedTraceStream late(gen, 1, 64, 4, /*first_chunk=*/3);
    ChunkHandle chunk = late.next();
    ASSERT_NE(chunk, nullptr);
    EXPECT_EQ(chunk->index, 3u);
    expectSameTrace(chunk->accesses, first_pass[3]->accesses);
}

TEST(GeneratedTraceStream, CoversDnnAndScaleGenerators)
{
    const WorkloadParams params = smallParams();
    const Workload dnn = makeDnnWorkload(DnnModel::kVgg16, params);
    for (unsigned g = 0; g < params.numGpus; ++g) {
        GeneratedTraceStream stream(
            [params](TraceSink &sink) {
                generateDnnTrace(DnnModel::kVgg16, params, sink);
            },
            g, 1000);
        expectSameTrace(drain(stream), dnn.traces[g]);
    }

    ScaleParams sp;
    sp.pages = 4096;
    sp.randomPerGpu = 2048;
    sp.sharedPerGpu = 512;
    const Workload scale = makeScaleWorkload(sp);
    ASSERT_EQ(scale.numGpus(), sp.numGpus);
    EXPECT_EQ(scale.footprintGenPages, sp.pages);
    for (unsigned g = 0; g < sp.numGpus; ++g) {
        GeneratedTraceStream stream(
            [sp](TraceSink &sink) { generateScaleTrace(sp, sink); }, g,
            777);
        expectSameTrace(drain(stream), scale.traces[g]);
    }
}

TEST(CountingSink, CountsMatchMaterializedSizes)
{
    const WorkloadParams params = smallParams();
    const Workload w = makeWorkload(AppId::kSc, params);
    CountingSink sink(params.numGpus);
    generateTrace(AppId::kSc, params, sink);
    ASSERT_EQ(sink.counts().size(), params.numGpus);
    for (unsigned g = 0; g < params.numGpus; ++g)
        EXPECT_EQ(sink.counts()[g], w.traces[g].size());
}

// --------------------------------------------------- chunk LRU cache

TEST(TraceCacheStreaming, OpenWorkloadMatchesMaterialized)
{
    const WorkloadParams params = smallParams();
    const Workload w = makeWorkload(AppId::kC2d, params);

    TraceCache cache;
    StreamedWorkload sw =
        cache.openWorkload(AppId::kC2d, params, 500);
    ASSERT_EQ(sw.streams.size(), params.numGpus);
    ASSERT_EQ(sw.accesses.size(), params.numGpus);
    EXPECT_EQ(sw.totalAccesses(), w.totalAccesses());
    EXPECT_EQ(sw.meta.name, w.name);
    EXPECT_EQ(sw.meta.footprintGenPages, w.footprintGenPages);
    for (unsigned g = 0; g < params.numGpus; ++g) {
        EXPECT_EQ(sw.accesses[g], w.traces[g].size());
        expectSameTrace(drain(*sw.streams[g]), w.traces[g]);
    }
    EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

TEST(TraceCacheStreaming, TinyBudgetEvictsWithoutChangingResults)
{
    const WorkloadParams params = smallParams();
    const Workload w = makeWorkload(AppId::kGemm, params);

    TraceCache cache;
    // A budget of a few chunks: far below the whole trace, so serving
    // all GPUs sequentially must cycle the LRU.
    cache.setByteBudget(16 * 1024);
    StreamedWorkload sw = cache.openWorkload(AppId::kGemm, params, 200);
    for (unsigned g = 0; g < params.numGpus; ++g)
        expectSameTrace(drain(*sw.streams[g]), w.traces[g]);
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.bytes(), 16u * 1024u);

    // Replaying an already-evicted range regenerates the same bytes.
    sw.streams[0]->seek(0);
    expectSameTrace(drain(*sw.streams[0]), w.traces[0]);
}

// ------------------------------------------------ streamed simulation

/** Fields that must agree for two runs to count as identical. */
void
expectSameResult(const harness::RunResult &a, const harness::RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.localFaults, b.localFaults);
    EXPECT_EQ(a.protectionFaults, b.protectionFaults);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.peakReplicas, b.peakReplicas);
    EXPECT_EQ(a.schemeAccesses, b.schemeAccesses);
    ASSERT_EQ(a.counters.size(), b.counters.size());
    for (std::size_t i = 0; i < a.counters.size(); ++i) {
        EXPECT_EQ(a.counters[i].first, b.counters[i].first);
        EXPECT_EQ(a.counters[i].second, b.counters[i].second)
            << a.counters[i].first;
    }
}

TEST(StreamedSimulator, BitIdenticalToMaterialized)
{
    const WorkloadParams params = smallParams();
    const Workload w = makeWorkload(AppId::kBfs, params);
    harness::SystemConfig config;
    config.numGpus = params.numGpus;

    harness::Simulator materialized(config, w);
    const harness::RunResult ref = materialized.run();

    TraceCache cache;
    harness::Simulator streamed(
        config, cache.openWorkload(AppId::kBfs, params, 300));
    expectSameResult(streamed.run(), ref);
}

TEST(StreamedSimulator, BatchingTogglesWithoutChangingResults)
{
    const WorkloadParams params = smallParams();
    const Workload w = makeWorkload(AppId::kGemm, params);
    harness::SystemConfig config;
    config.numGpus = params.numGpus;

    config.batchAccesses = false;
    harness::Simulator plain(config, w);
    const harness::RunResult ref = plain.run();
    EXPECT_EQ(ref.accessesBatched, 0u);

    config.batchAccesses = true;
    harness::Simulator batched(config, w);
    const harness::RunResult result = batched.run();
    expectSameResult(result, ref);
    // Batching must actually engage (the drain tail alone guarantees
    // inline-eligible completions) and pay in executed events.
    EXPECT_GT(result.accessesBatched, 0u);
    EXPECT_EQ(result.eventsExecuted + result.accessesBatched,
              ref.eventsExecuted);
}

}  // namespace
}  // namespace grit::workload
