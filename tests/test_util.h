/**
 * @file
 * Shared fixtures for driver-level tests: a miniature multi-GPU system
 * (fabric + GPUs + UVM driver + stats) with small, deterministic
 * geometry.
 */

#ifndef GRIT_TESTS_TEST_UTIL_H_
#define GRIT_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "gpu/gpu.h"
#include "interconnect/topology.h"
#include "mem/page_geometry.h"
#include "policy/policy.h"
#include "stats/counters.h"
#include "stats/latency_breakdown.h"
#include "uvm/uvm_driver.h"

namespace grit::test {

/** A small fully wired system for unit-testing UVM mechanics. */
class MiniSystem
{
  public:
    /**
     * @param num_gpus       GPUs to build.
     * @param capacity_pages per-GPU DRAM frames (0 = unlimited).
     */
    explicit MiniSystem(unsigned num_gpus = 2,
                        std::uint64_t capacity_pages = 0,
                        uvm::UvmConfig uvm_config = {},
                        mem::PageGeometry geo = {})
        : geometry(geo)
    {
        ic::FabricConfig fabric_config;
        fabric_config.numGpus = num_gpus;
        fabric = ic::makeTopology(fabric_config);

        gpu::GpuConfig gpu_config;
        gpu_config.lanes = 4;  // keep L1 TLB count small
        gpu_config.dramCapacityPages = capacity_pages;
        std::vector<gpu::Gpu *> views;
        for (unsigned g = 0; g < num_gpus; ++g) {
            gpus.push_back(std::make_unique<gpu::Gpu>(
                static_cast<sim::GpuId>(g), gpu_config, geometry));
            views.push_back(gpus.back().get());
        }
        driver = std::make_unique<uvm::UvmDriver>(
            uvm_config, *fabric, views, stats, breakdown, geometry);
    }

    /** Attach @p policy to the driver and keep it alive. */
    void
    usePolicy(std::unique_ptr<policy::PlacementPolicy> p)
    {
        policy = std::move(p);
        driver->setPolicy(policy.get());
    }

    gpu::Gpu &gpu(unsigned g) { return *gpus[g]; }

    /** Declared before gpus/driver: both hold references into it. */
    mem::PageGeometry geometry;
    stats::StatSet stats;
    stats::LatencyBreakdown breakdown;
    std::unique_ptr<ic::Topology> fabric;
    std::vector<std::unique_ptr<gpu::Gpu>> gpus;
    std::unique_ptr<uvm::UvmDriver> driver;
    std::unique_ptr<policy::PlacementPolicy> policy;
};

}  // namespace grit::test

#endif  // GRIT_TESTS_TEST_UTIL_H_
