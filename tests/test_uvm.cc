/** @file Unit tests for the UVM driver: fault handling, migration,
 *  duplication, write collapse, evictions, and coalescing. */

#include <gtest/gtest.h>

#include "policy/access_counter_policy.h"
#include "policy/duplication.h"
#include "policy/ideal.h"
#include "policy/on_touch.h"
#include "test_util.h"
#include "uvm/fault.h"
#include "uvm/replica_directory.h"

namespace grit::uvm {
namespace {

using test::MiniSystem;

// -------------------------------------------------------------- FaultCoalescer

TEST(FaultCoalescer, CoalescesWhileInFlight)
{
    FaultCoalescer c;
    EXPECT_EQ(c.inflight(0, 5, 10), sim::kCycleMax);
    c.record(0, 5, 100);
    EXPECT_EQ(c.inflight(0, 5, 50), 100u);
    EXPECT_EQ(c.coalesced(), 1u);
}

TEST(FaultCoalescer, ExpiresAfterCompletion)
{
    FaultCoalescer c;
    c.record(0, 5, 100);
    EXPECT_EQ(c.inflight(0, 5, 100), sim::kCycleMax);
    EXPECT_EQ(c.coalesced(), 0u);
}

TEST(FaultCoalescer, DistinctGpusAndPagesAreIndependent)
{
    FaultCoalescer c;
    c.record(0, 5, 100);
    EXPECT_EQ(c.inflight(1, 5, 10), sim::kCycleMax);
    EXPECT_EQ(c.inflight(0, 6, 10), sim::kCycleMax);
}

// ------------------------------------------------------------ ReplicaDirectory

TEST(ReplicaDirectory, DefaultsToUntouchedHostPage)
{
    ReplicaDirectory dir;
    EXPECT_EQ(dir.ownerOf(7), sim::kHostId);
    EXPECT_FALSE(dir.touched(7));
    EXPECT_EQ(dir.find(7), nullptr);
}

TEST(ReplicaDirectory, TracksReplicasAndMappersUniquely)
{
    ReplicaDirectory dir;
    PageInfo &info = dir.info(1);
    info.addReplica(2);
    info.addReplica(2);
    info.addRemoteMapper(3);
    info.addRemoteMapper(3);
    EXPECT_EQ(info.replicas.size(), 1u);
    EXPECT_EQ(info.remoteMappers.size(), 1u);
    EXPECT_TRUE(info.hasReplica(2));
    EXPECT_TRUE(info.hasRemoteMapper(3));
    info.removeReplica(2);
    info.removeRemoteMapper(3);
    EXPECT_FALSE(info.hasReplica(2));
    EXPECT_FALSE(info.hasRemoteMapper(3));
}

TEST(ReplicaDirectory, TotalReplicas)
{
    ReplicaDirectory dir;
    dir.addReplica(1, 0, 0);
    dir.addReplica(1, 2, 0);
    dir.addReplica(1, 2, 0);  // idempotent
    dir.addReplica(9, 1, 0);
    EXPECT_EQ(dir.totalReplicas(), 3u);
    dir.removeReplica(9, 1, 0);
    dir.removeReplica(9, 1, 0);  // absent: no underflow
    EXPECT_EQ(dir.totalReplicas(), 2u);
    dir.clearReplicas(1, 0);
    EXPECT_EQ(dir.totalReplicas(), 0u);
    dir.addReplica(3, 0, 0);
    dir.clear();
    EXPECT_EQ(dir.totalReplicas(), 0u);
}

// ------------------------------------------------------------------ Cold fault

TEST(UvmDriver, ColdFaultMigratesFromHost)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());

    const FaultOutcome out =
        sys.driver->handleFault(0, 10, false, false, 0);
    EXPECT_FALSE(out.coalesced);
    EXPECT_GT(out.completion, 0u);
    EXPECT_EQ(sys.driver->directory().ownerOf(10), 0);
    EXPECT_TRUE(sys.driver->directory().touched(10));
    EXPECT_TRUE(sys.gpu(0).pageTable().translates(10));
    EXPECT_TRUE(sys.gpu(0).dram().resident(10));
    EXPECT_EQ(sys.stats.get("uvm.cold_migrations"), 1u);
}

TEST(UvmDriver, CoalescedFaultReturnsInflightCompletion)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    const FaultOutcome first =
        sys.driver->handleFault(0, 10, false, false, 0);
    const FaultOutcome second =
        sys.driver->handleFault(0, 10, false, false, 1);
    EXPECT_TRUE(second.coalesced);
    EXPECT_EQ(second.completion, first.completion);
    EXPECT_EQ(sys.stats.get("uvm.local_faults"), 1u);
}

// ------------------------------------------------------------------- On-touch

TEST(UvmDriver, OnTouchPingPongMovesOwnership)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);
    EXPECT_EQ(sys.driver->directory().ownerOf(10), 0);

    sys.driver->handleFault(1, 10, false, false, 100000);
    EXPECT_EQ(sys.driver->directory().ownerOf(10), 1);
    // The old owner's mapping and frame are gone.
    EXPECT_FALSE(sys.gpu(0).pageTable().translates(10));
    EXPECT_FALSE(sys.gpu(0).dram().resident(10));
    EXPECT_TRUE(sys.gpu(1).dram().resident(10));
    EXPECT_EQ(sys.stats.get("uvm.migrations"), 1u);
    EXPECT_EQ(sys.gpu(0).flushes(), 1u);  // owner flushed
}

// ------------------------------------------------------------------ Map remote

TEST(UvmDriver, AccessCounterPolicyMapsRemote)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::AccessCounterPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);  // cold: migrate
    sys.driver->handleFault(1, 10, false, false, 100000);
    EXPECT_EQ(sys.driver->directory().ownerOf(10), 0);  // stays put
    const mem::PteRecord *rec = sys.gpu(1).pageTable().find(10);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->kind, mem::MappingKind::kRemote);
    EXPECT_EQ(rec->location, 0);
    EXPECT_TRUE(
        sys.driver->directory().find(10)->hasRemoteMapper(1));
    EXPECT_EQ(sys.stats.get("uvm.remote_maps"), 1u);
}

TEST(UvmDriver, MigrationInvalidatesRemoteMappers)
{
    MiniSystem sys(3);
    sys.usePolicy(std::make_unique<policy::AccessCounterPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);
    sys.driver->handleFault(1, 10, false, false, 100000);
    sys.driver->migratePage(10, 2, 200000,
                            stats::LatencyKind::kPageMigration);
    EXPECT_EQ(sys.driver->directory().ownerOf(10), 2);
    EXPECT_FALSE(sys.gpu(1).pageTable().translates(10));
    EXPECT_TRUE(
        sys.driver->directory().find(10)->remoteMappers.empty());
}

TEST(UvmDriver, CounterMigrationPullsGroupPages)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::AccessCounterPolicy>());
    // GPU 0 owns pages 0 and 1 (same 64 KB group).
    sys.driver->handleFault(0, 0, false, false, 0);
    sys.driver->handleFault(0, 1, false, false, 1000);
    // GPU 1's counters trip: the whole group migrates to GPU 1.
    sys.driver->counterMigration(1, 0, 200000);
    EXPECT_EQ(sys.driver->directory().ownerOf(0), 1);
    EXPECT_EQ(sys.driver->directory().ownerOf(1), 1);
}

// ----------------------------------------------------------------- Duplication

TEST(UvmDriver, ReadFaultDuplicates)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::DuplicationPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);  // cold: own it
    sys.driver->handleFault(1, 10, false, false, 100000);

    const PageInfo *info = sys.driver->directory().find(10);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->owner, 0);
    EXPECT_TRUE(info->hasReplica(1));
    // Replica mapping is read-only; the owner is write-protected too.
    EXPECT_TRUE(sys.gpu(1).pageTable().find(10)->readOnlyReplica);
    EXPECT_TRUE(sys.gpu(0).pageTable().find(10)->readOnlyReplica);
    EXPECT_EQ(sys.gpu(1).dram().kindOf(10), mem::FrameKind::kReplica);
    EXPECT_EQ(sys.stats.get("uvm.duplications"), 1u);
}

TEST(UvmDriver, WriteCollapseMakesWriterExclusive)
{
    MiniSystem sys(3);
    sys.usePolicy(std::make_unique<policy::DuplicationPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);
    sys.driver->handleFault(1, 10, false, false, 100000);
    sys.driver->handleFault(2, 10, false, false, 200000);
    EXPECT_EQ(sys.driver->directory().find(10)->replicas.size(), 2u);

    // GPU 1 writes its read-only replica: protection fault -> collapse.
    sys.driver->handleFault(1, 10, true, true, 300000);
    const PageInfo *info = sys.driver->directory().find(10);
    EXPECT_EQ(info->owner, 1);
    EXPECT_TRUE(info->replicas.empty());
    EXPECT_FALSE(sys.gpu(0).pageTable().translates(10));
    EXPECT_FALSE(sys.gpu(2).pageTable().translates(10));
    EXPECT_TRUE(sys.gpu(1).pageTable().find(10)->pte.writable());
    EXPECT_EQ(sys.gpu(1).dram().kindOf(10), mem::FrameKind::kOwned);
    EXPECT_EQ(sys.stats.get("uvm.collapses"), 1u);
    EXPECT_EQ(sys.stats.get("uvm.protection_faults"), 1u);
}

TEST(UvmDriver, CollapseByNonHolderFetchesData)
{
    MiniSystem sys(3);
    sys.usePolicy(std::make_unique<policy::DuplicationPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);
    sys.driver->handleFault(1, 10, false, false, 100000);
    // GPU 2 writes without holding any copy.
    sys.driver->handleFault(2, 10, true, false, 200000);
    EXPECT_EQ(sys.driver->directory().ownerOf(10), 2);
    EXPECT_TRUE(sys.gpu(2).dram().resident(10));
    EXPECT_FALSE(sys.gpu(0).dram().resident(10));
}

TEST(UvmDriver, ReadAfterCollapseReduplicates)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::DuplicationPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);
    sys.driver->handleFault(1, 10, false, false, 100000);
    sys.driver->handleFault(1, 10, true, true, 200000);  // collapse
    sys.driver->handleFault(0, 10, false, false, 300000);
    EXPECT_TRUE(sys.driver->directory().find(10)->hasReplica(0));
    EXPECT_EQ(sys.stats.get("uvm.duplications"), 2u);
}

TEST(UvmDriver, ResetDuplicationDropsReplicas)
{
    MiniSystem sys(3);
    sys.usePolicy(std::make_unique<policy::DuplicationPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);
    sys.driver->handleFault(1, 10, false, false, 100000);
    sys.driver->resetDuplication(10, 200000);
    const PageInfo *info = sys.driver->directory().find(10);
    EXPECT_TRUE(info->replicas.empty());
    EXPECT_EQ(info->owner, 0);
    EXPECT_TRUE(sys.gpu(0).pageTable().find(10)->pte.writable());
    EXPECT_FALSE(sys.gpu(1).pageTable().translates(10));
}

// -------------------------------------------------------------------- Eviction

TEST(UvmDriver, CapacityEvictionSpillsToHost)
{
    MiniSystem sys(2, /*capacity_pages=*/2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    sys.driver->handleFault(0, 1, true, false, 0);
    sys.driver->handleFault(0, 2, true, false, 100000);
    sys.driver->handleFault(0, 3, true, false, 200000);  // evicts page 1
    EXPECT_EQ(sys.driver->directory().ownerOf(1), sim::kHostId);
    EXPECT_FALSE(sys.gpu(0).pageTable().translates(1));
    EXPECT_EQ(sys.stats.get("uvm.spills"), 1u);
    // Written page: spill pays a writeback.
    EXPECT_EQ(sys.stats.get("uvm.spill_writebacks"), 1u);
}

TEST(UvmDriver, CleanSpillSkipsWriteback)
{
    MiniSystem sys(2, /*capacity_pages=*/2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    sys.driver->handleFault(0, 1, false, false, 0);
    sys.driver->handleFault(0, 2, false, false, 100000);
    sys.driver->handleFault(0, 3, false, false, 200000);
    EXPECT_EQ(sys.stats.get("uvm.spills"), 1u);
    EXPECT_EQ(sys.stats.get("uvm.spill_writebacks"), 0u);
}

TEST(UvmDriver, EvictedOwnerPromotesReplica)
{
    MiniSystem sys(2, /*capacity_pages=*/2);
    sys.usePolicy(std::make_unique<policy::DuplicationPolicy>());
    sys.driver->handleFault(0, 1, false, false, 0);       // GPU0 owns 1
    sys.driver->handleFault(1, 1, false, false, 100000);  // GPU1 replica
    // Fill GPU 0 so page 1's owned frame is evicted there.
    sys.driver->handleFault(0, 2, false, false, 200000);
    sys.driver->handleFault(0, 3, false, false, 300000);
    const PageInfo *info = sys.driver->directory().find(1);
    EXPECT_EQ(info->owner, 1);  // replica promoted to owner
    EXPECT_FALSE(info->hasReplica(1));
    EXPECT_EQ(sys.gpu(1).dram().kindOf(1), mem::FrameKind::kOwned);
}

// ----------------------------------------------------------------------- Ideal

TEST(UvmDriver, IdealInstallsLocalAtAllRequesters)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::IdealPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);       // cold
    sys.driver->handleFault(1, 10, false, false, 100000);  // ideal-local
    EXPECT_TRUE(sys.gpu(0).pageTable().translates(10));
    EXPECT_TRUE(sys.gpu(1).pageTable().translates(10));
    EXPECT_EQ(sys.gpu(1).pageTable().find(10)->location, 1);
}

// --------------------------------------------------------------------- TransFW

TEST(UvmDriver, TransFwShortCircuitsRemoteMapping)
{
    uvm::UvmConfig config;
    config.transFw = true;
    MiniSystem sys(2, 0, config);
    sys.usePolicy(std::make_unique<policy::AccessCounterPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);  // cold via host
    sys.driver->handleFault(1, 10, false, false, 100000);
    EXPECT_EQ(sys.stats.get("uvm.transfw_forwards"), 1u);
    EXPECT_EQ(sys.gpu(1).pageTable().find(10)->kind,
              mem::MappingKind::kRemote);
}

// --------------------------------------------------------------------- Prefetch

TEST(UvmDriver, PrefetchPlacesHostPagesOnly)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::OnTouchPolicy>());
    sys.driver->prefetchPage(10, 0, 0);
    EXPECT_EQ(sys.driver->directory().ownerOf(10), 0);
    EXPECT_TRUE(sys.gpu(0).pageTable().translates(10));
    EXPECT_EQ(sys.stats.get("uvm.prefetches"), 1u);
    // Already resident elsewhere: no-op.
    sys.driver->prefetchPage(10, 1, 100);
    EXPECT_EQ(sys.driver->directory().ownerOf(10), 0);
    EXPECT_EQ(sys.stats.get("uvm.prefetches"), 1u);
}

TEST(UvmDriver, PrefetchPromotingReplicaLeavesReplicaList)
{
    // Regression: a replica frame promoted to owned by a prefetch must
    // leave the directory's replica list, or a later eviction promotes
    // a phantom heir.
    MiniSystem sys(2, /*capacity_pages=*/2);
    sys.usePolicy(std::make_unique<policy::DuplicationPolicy>());
    // Page 1: owner spills to host while GPU 1 keeps a replica... then
    // GPU 1 prefetches it (replica frame becomes the owned copy).
    sys.driver->handleFault(0, 1, false, false, 0);
    sys.driver->handleFault(1, 1, false, false, 100000);
    // Spill owner (GPU 0) by filling its two frames.
    sys.driver->handleFault(0, 2, false, false, 200000);
    sys.driver->handleFault(0, 3, false, false, 300000);
    // If the owner spilled (rather than promoting GPU 1), re-create the
    // replica-under-host-owner shape via a host-owner duplication.
    if (sys.driver->directory().ownerOf(1) == sim::kHostId) {
        sys.driver->prefetchPage(1, 1, 400000);
        EXPECT_FALSE(sys.driver->directory().find(1)->hasReplica(1));
        EXPECT_EQ(sys.driver->directory().ownerOf(1), 1);
    }
    // Now evict GPU 1's frames; the promotion path must not assert.
    sys.driver->handleFault(1, 4, false, false, 500000);
    sys.driver->handleFault(1, 5, false, false, 600000);
    sys.driver->handleFault(1, 6, false, false, 700000);
    SUCCEED();
}

// ------------------------------------------------------------------- Breakdown

TEST(UvmDriver, LatencyChargedToMatchingCategories)
{
    MiniSystem sys(2);
    sys.usePolicy(std::make_unique<policy::DuplicationPolicy>());
    sys.driver->handleFault(0, 10, false, false, 0);
    EXPECT_GT(sys.breakdown.get(stats::LatencyKind::kHost), 0u);
    EXPECT_GT(sys.breakdown.get(stats::LatencyKind::kPageDuplication),
              0u);  // cold placement under duplication
    sys.driver->handleFault(1, 10, false, false, 100000);
    sys.driver->handleFault(1, 10, true, true, 200000);
    EXPECT_GT(sys.breakdown.get(stats::LatencyKind::kWriteCollapse), 0u);
}

}  // namespace
}  // namespace grit::uvm
