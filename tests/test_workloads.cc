/** @file Tests for the workload generators: structural invariants for
 *  every app, plus per-app characterization properties matching the
 *  paper's Section IV observations. */

#include <gtest/gtest.h>

#include "workload/apps.h"
#include "workload/characterizer.h"
#include "workload/dnn.h"
#include "workload/generators.h"

namespace grit::workload {
namespace {

// --------------------------------------------------------------- generators

TEST(Region, SliceCoversWithoutOverlap)
{
    const Region region{100, 10};
    std::uint64_t total = 0;
    sim::PageId next = region.firstPage;
    for (unsigned i = 0; i < 4; ++i) {
        const Region s = region.slice(i, 4);
        EXPECT_EQ(s.firstPage, next);
        next = s.endPage();
        total += s.pages;
    }
    EXPECT_EQ(total, region.pages);
    EXPECT_EQ(next, region.endPage());
}

TEST(Region, Contains)
{
    const Region region{10, 5};
    EXPECT_TRUE(region.contains(10));
    EXPECT_TRUE(region.contains(14));
    EXPECT_FALSE(region.contains(15));
    EXPECT_FALSE(region.contains(9));
}

TEST(RegionAllocator, SequentialNonOverlapping)
{
    RegionAllocator ra;
    const Region a = ra.alloc(10);
    const Region b = ra.alloc(5);
    EXPECT_EQ(a.firstPage, 0u);
    EXPECT_EQ(b.firstPage, 10u);
    EXPECT_EQ(ra.allocated(), 15u);
}

TEST(TraceBuilder, SweepTouchesEveryPage)
{
    TraceBuilder tb(1, 1);
    tb.sweep(0, Region{0, 10}, 3, 0.0);
    const auto traces = tb.take();
    EXPECT_EQ(traces[0].size(), 30u);
    for (const Access &a : traces[0]) {
        EXPECT_LT(a.addr / kGenPageBytes, 10u);
        EXPECT_FALSE(a.write);
    }
}

TEST(TraceBuilder, WriteProbabilityRespected)
{
    TraceBuilder tb(1, 2);
    tb.randomAccesses(0, Region{0, 4}, 4000, 0.5);
    const auto traces = tb.take();
    std::size_t writes = 0;
    for (const Access &a : traces[0])
        writes += a.write ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(writes) / 4000.0, 0.5, 0.05);
}

TEST(TraceBuilder, StridedPassVisitsStrideOffsets)
{
    TraceBuilder tb(1, 3);
    tb.stridedPass(0, Region{0, 16}, 1, 4, 1, 0.0);
    const auto traces = tb.take();
    ASSERT_EQ(traces[0].size(), 4u);  // pages 1, 5, 9, 13
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(traces[0][i].addr / kGenPageBytes, 1 + 4 * i);
}

// ------------------------------------------------------------- app metadata

TEST(AppMeta, TableIIRows)
{
    EXPECT_STREQ(appMeta(AppId::kBfs).suite, "SHOC");
    EXPECT_STREQ(appMeta(AppId::kBfs).pattern, "Random");
    EXPECT_EQ(appMeta(AppId::kBfs).paperFootprintMB, 32u);
    EXPECT_STREQ(appMeta(AppId::kFir).suite, "Hetero-Mark");
    EXPECT_EQ(appMeta(AppId::kFir).paperFootprintMB, 155u);
    EXPECT_STREQ(appMeta(AppId::kGemm).pattern, "Scatter-Gather");
    EXPECT_STREQ(appMeta(AppId::kC2d).suite, "DNN-Mark");
    EXPECT_EQ(appMeta(AppId::kSt).paperFootprintMB, 33u);
}

TEST(AppMeta, NameLookupRoundTrip)
{
    for (AppId app : kAllApps)
        EXPECT_EQ(appFromName(appMeta(app).abbr), app);
    EXPECT_EQ(appFromName("gemm"), AppId::kGemm);  // case-insensitive
    EXPECT_FALSE(appFromName("NOPE").has_value());
}

// ------------------------------------------------- structural invariants

class AllApps : public ::testing::TestWithParam<AppId>
{
  protected:
    WorkloadParams params_;  // defaults: 4 GPUs
};

TEST_P(AllApps, GeneratesNonEmptyShardedTraces)
{
    const Workload w = makeWorkload(GetParam(), params_);
    EXPECT_EQ(w.numGpus(), 4u);
    EXPECT_GT(w.footprintGenPages, 0u);
    EXPECT_GT(w.totalAccesses(), 1000u);
    for (const GpuTrace &trace : w.traces)
        EXPECT_FALSE(trace.empty());
}

TEST_P(AllApps, AddressesStayInsideFootprint)
{
    const Workload w = makeWorkload(GetParam(), params_);
    for (const GpuTrace &trace : w.traces)
        for (const Access &a : trace)
            ASSERT_LT(a.addr, w.footprintBytes());
}

TEST_P(AllApps, DeterministicForSameSeed)
{
    const Workload a = makeWorkload(GetParam(), params_);
    const Workload b = makeWorkload(GetParam(), params_);
    ASSERT_EQ(a.totalAccesses(), b.totalAccesses());
    for (unsigned g = 0; g < a.numGpus(); ++g) {
        ASSERT_EQ(a.traces[g].size(), b.traces[g].size());
        for (std::size_t i = 0; i < a.traces[g].size(); ++i) {
            ASSERT_EQ(a.traces[g][i].addr, b.traces[g][i].addr);
            ASSERT_EQ(a.traces[g][i].write, b.traces[g][i].write);
        }
    }
}

TEST_P(AllApps, DifferentSeedsDiffer)
{
    WorkloadParams other = params_;
    other.seed = params_.seed + 1;
    const Workload a = makeWorkload(GetParam(), params_);
    const Workload b = makeWorkload(GetParam(), other);
    // Same structure, different sampled lines/pages somewhere.
    bool any_difference = false;
    for (unsigned g = 0; g < a.numGpus() && !any_difference; ++g) {
        for (std::size_t i = 0;
             i < std::min(a.traces[g].size(), b.traces[g].size()); ++i) {
            if (a.traces[g][i].addr != b.traces[g][i].addr) {
                any_difference = true;
                break;
            }
        }
    }
    EXPECT_TRUE(any_difference);
}

TEST_P(AllApps, ScalesWithGpuCount)
{
    for (unsigned gpus : {2u, 8u, 16u}) {
        WorkloadParams p = params_;
        p.numGpus = gpus;
        const Workload w = makeWorkload(GetParam(), p);
        EXPECT_EQ(w.numGpus(), gpus);
        for (const GpuTrace &trace : w.traces)
            EXPECT_FALSE(trace.empty());
    }
}

TEST_P(AllApps, FootprintDivisorScalesPages)
{
    WorkloadParams big = params_;
    big.footprintDivisor = 8;
    const Workload a = makeWorkload(GetParam(), params_);  // divisor 16
    const Workload b = makeWorkload(GetParam(), big);
    EXPECT_EQ(b.footprintGenPages, 2 * a.footprintGenPages);
}

INSTANTIATE_TEST_SUITE_P(
    TableII, AllApps, ::testing::ValuesIn(kAllApps),
    [](const ::testing::TestParamInfo<AppId> &info) {
        return std::string(appMeta(info.param).abbr);
    });

// ------------------------------------ paper characterization properties

TEST(AppCharacter, FirAndScAreOverwhelminglyPrivate)
{
    for (AppId app : {AppId::kFir, AppId::kSc}) {
        const auto c = classifyPages(makeWorkload(app));
        const double private_frac =
            static_cast<double>(c.privatePages) /
            static_cast<double>(c.totalPages());
        EXPECT_GT(private_frac, 0.9) << appMeta(app).abbr;
    }
}

TEST(AppCharacter, BfsAndStShareMostPages)
{
    for (AppId app : {AppId::kBfs, AppId::kSt}) {
        const auto c = classifyPages(makeWorkload(app));
        const double shared_frac =
            static_cast<double>(c.sharedPages) /
            static_cast<double>(c.totalPages());
        EXPECT_GT(shared_frac, 0.6) << appMeta(app).abbr;
    }
}

TEST(AppCharacter, BfsAccessesConcentrateOnPrivatePages)
{
    // Section IV-B: BFS has many shared pages but few accesses to them.
    const auto c = classifyPages(makeWorkload(AppId::kBfs));
    EXPECT_GT(c.accessesToPrivate, c.accessesToShared);
}

TEST(AppCharacter, GemmAndMmMixPrivateAndShared)
{
    for (AppId app : {AppId::kGemm, AppId::kMm}) {
        const auto c = classifyPages(makeWorkload(app));
        const double shared_frac =
            static_cast<double>(c.sharedPages) /
            static_cast<double>(c.totalPages());
        EXPECT_GT(shared_frac, 0.25) << appMeta(app).abbr;
        EXPECT_LT(shared_frac, 0.75) << appMeta(app).abbr;
    }
}

TEST(AppCharacter, BfsAndGemmAreReadDominant)
{
    for (AppId app : {AppId::kBfs, AppId::kGemm}) {
        const auto c = classifyPages(makeWorkload(app));
        const double read_frac =
            static_cast<double>(c.accessesToRead) /
            static_cast<double>(c.totalAccesses());
        EXPECT_GT(read_frac, 0.5) << appMeta(app).abbr;
    }
}

TEST(AppCharacter, BsAndStAreReadWriteHeavy)
{
    for (AppId app : {AppId::kBs, AppId::kSt}) {
        const auto c = classifyPages(makeWorkload(app));
        const double rw_frac =
            static_cast<double>(c.accessesToReadWrite) /
            static_cast<double>(c.totalAccesses());
        EXPECT_GT(rw_frac, 0.6) << appMeta(app).abbr;
    }
}

TEST(AppCharacter, NeighborPagesShareAttributes)
{
    // Section IV-C: adjacent pages mostly carry the same attribute —
    // the property Neighboring-Aware Prediction exploits.
    for (AppId app : {AppId::kGemm, AppId::kSt, AppId::kFir}) {
        const Workload w = makeWorkload(app);
        const auto map = attributesOverTime(w, 16);
        EXPECT_GT(neighborSimilarity(map), 0.8) << appMeta(app).abbr;
    }
}

TEST(AppCharacter, StHasReadOnlyIntervalsThenWrites)
{
    // Fig. 10: early intervals read-only, later intervals mix writes.
    const Workload w = makeWorkload(AppId::kSt);
    const sim::PageId page = mostAccessedSharedRwPage(w);
    const auto dist = pageRwDistribution(w, page, 16);
    EXPECT_EQ(dist.front().second, 0u);  // no early writes
    std::uint64_t late_writes = 0;
    for (std::size_t k = 8; k < dist.size(); ++k)
        late_writes += dist[k].second;
    EXPECT_GT(late_writes, 0u);
}

// ------------------------------------------------------------------ DNN

TEST(Dnn, ModelsGenerateAndDiffer)
{
    const Workload vgg = makeDnnWorkload(DnnModel::kVgg16);
    const Workload resnet = makeDnnWorkload(DnnModel::kResNet18);
    EXPECT_EQ(vgg.name, "VGG16");
    EXPECT_EQ(resnet.name, "ResNet18");
    EXPECT_GT(vgg.totalAccesses(), 1000u);
    EXPECT_GT(resnet.totalAccesses(), 1000u);
    EXPECT_NE(vgg.footprintGenPages, resnet.footprintGenPages);
}

TEST(Dnn, PipelineSharesActivationBoundaries)
{
    const auto c = classifyPages(makeDnnWorkload(DnnModel::kResNet18));
    EXPECT_GT(c.sharedPages, 0u);
    EXPECT_GT(c.privatePages, 0u);  // weights stay private
}

}  // namespace
}  // namespace grit::workload
